"""Serializable request/response units of the hierarchical read path.

The service tier (:mod:`repro.service`) splits one logical read across
data nodes that each own a consistent-hash shard of the super-tile space.
The currency of that split is defined here:

* :class:`SubReadRequest` — "give me these tiles (or this region) of that
  object", small enough to route to whichever node owns the shard;
* :class:`SubReadResponse` — the decoded tile payloads plus the
  storage-cost stats of serving them;
* :class:`ObjectDescriptor` — the metadata a service node needs to split
  a region into per-shard sub-reads without holding the data itself.

Every unit is a plain dataclass whose state round-trips through an
explicit wire format: a JSON header line followed by length-prefixed
binary payload frames (:func:`encode_frames` / :func:`decode_frames`).
Cell bytes never pass through JSON — they ride in the binary frames, and
decoding hands back zero-copy ``memoryview`` slices of the received
buffer.  A sub-read can therefore be dispatched to a local task today and
a remote node tomorrow without changing shape.

:meth:`repro.core.heaven.Heaven.serve_sub_reads` is the executable half:
it answers a batch of units over one staging pass, and
:meth:`repro.core.admission.AdmissionController.run_units` answers them
as concurrent queries with fused sweeps and exact per-unit byte
attribution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..arrays.celltype import CellType, lookup as lookup_cell_type
from ..arrays.minterval import MInterval
from ..errors import CellTypeError, WireFormatError

__all__ = [
    "SubReadRequest",
    "SubReadResponse",
    "SubReadStats",
    "TilePayload",
    "WireError",
    "ObjectDescriptor",
    "encode_frames",
    "decode_frames",
]

Payload = Union[bytes, bytearray, memoryview]

#: wire-format version stamped into every encoded header
WIRE_VERSION = 1


# -- framing -------------------------------------------------------------------


def encode_frames(header: Dict[str, object], payloads: Sequence[Payload]) -> bytes:
    """One message = 4-byte header length + JSON header + payload frames.

    The header carries every JSON-able field plus the byte length of each
    payload frame; the frames follow back to back.  ``bytes.join`` accepts
    memoryviews, so callers can pass zero-copy views straight through.
    """
    head = dict(header)
    head["_wire"] = WIRE_VERSION
    head["_frames"] = [len(memoryview(p)) for p in payloads]
    head_bytes = json.dumps(head, sort_keys=True).encode("utf-8")
    return b"".join(
        [len(head_bytes).to_bytes(4, "big"), head_bytes, *payloads]
    )


def decode_frames(data: Payload) -> Tuple[Dict[str, object], List[memoryview]]:
    """Inverse of :func:`encode_frames`; payloads are read-only views."""
    view = memoryview(data).cast("B").toreadonly()
    if len(view) < 4:
        raise WireFormatError("message shorter than its header length field")
    head_len = int.from_bytes(view[:4], "big")
    if 4 + head_len > len(view):
        raise WireFormatError("message truncated inside the JSON header")
    try:
        header = json.loads(bytes(view[4 : 4 + head_len]).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireFormatError(f"malformed JSON header: {exc}") from None
    if header.get("_wire") != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire version {header.get('_wire')!r}"
        )
    frames: List[memoryview] = []
    offset = 4 + head_len
    for length in header.get("_frames", []):
        end = offset + int(length)
        if end > len(view):
            raise WireFormatError("message truncated inside a payload frame")
        frames.append(view[offset:end])
        offset = end
    if offset != len(view):
        raise WireFormatError(
            f"{len(view) - offset} trailing byte(s) after the last frame"
        )
    header.pop("_wire", None)
    header.pop("_frames", None)
    return header, frames


def _as_payload(cells: np.ndarray) -> memoryview:
    """Flat read-only byte view of an array (zero-copy when contiguous)."""
    contiguous = np.ascontiguousarray(cells)
    return memoryview(contiguous).cast("B").toreadonly()


def _dtype_for(name: str) -> np.dtype:
    """Resolve a wire dtype name: registry first, raw numpy names second.

    Objects wrapped via ``MDD.from_array`` carry numpy dtype names
    ("float64") instead of registered RasDL names ("double").
    """
    try:
        return lookup_cell_type(name).dtype
    except CellTypeError:
        try:
            return np.dtype(name)
        except TypeError:
            raise WireFormatError(f"unknown wire dtype {name!r}") from None


# -- units ---------------------------------------------------------------------


@dataclass(frozen=True)
class WireError:
    """A typed error carried inside a response unit."""

    type: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {"type": self.type, "message": self.message}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WireError":
        return cls(type=str(data["type"]), message=str(data["message"]))


@dataclass(frozen=True)
class SubReadRequest:
    """One routable sub-read: tiles (or a whole region) of one object.

    ``tile_ids=None`` means "every tile intersecting *region*" — the form
    a single-node deployment or an admission-level query uses.  A service
    node sends the sharded form: the explicit tile subset its hash ring
    assigned to the addressed data node (*region* then only records the
    originating query window for access statistics).
    """

    request_id: str
    tenant: str
    collection: str
    object_name: str
    region: str
    tile_ids: Optional[Tuple[int, ...]] = None
    #: virtual arrival time on the cluster timeline (open-loop clients)
    arrival_v: float = 0.0

    def parsed_region(self) -> MInterval:
        return MInterval.parse(self.region)

    def to_header(self) -> Dict[str, object]:
        return {
            "kind": "sub_read",
            "request_id": self.request_id,
            "tenant": self.tenant,
            "collection": self.collection,
            "object": self.object_name,
            "region": self.region,
            "tile_ids": None if self.tile_ids is None else list(self.tile_ids),
            "arrival_v": self.arrival_v,
        }

    def encode(self) -> bytes:
        return encode_frames(self.to_header(), [])

    @classmethod
    def from_header(cls, header: Dict[str, object]) -> "SubReadRequest":
        if header.get("kind") != "sub_read":
            raise WireFormatError(f"not a sub_read header: {header.get('kind')!r}")
        tile_ids = header.get("tile_ids")
        return cls(
            request_id=str(header["request_id"]),
            tenant=str(header["tenant"]),
            collection=str(header["collection"]),
            object_name=str(header["object"]),
            region=str(header["region"]),
            tile_ids=(
                None if tile_ids is None else tuple(int(t) for t in tile_ids)
            ),
            arrival_v=float(header.get("arrival_v", 0.0)),
        )

    @classmethod
    def decode(cls, data: Payload) -> "SubReadRequest":
        header, frames = decode_frames(data)
        if frames:
            raise WireFormatError("sub_read request carries no payload frames")
        return cls.from_header(header)


@dataclass(frozen=True)
class TilePayload:
    """One decoded tile riding in a response: geometry + raw cell bytes."""

    tile_id: int
    domain: str
    dtype: str
    payload: Payload

    @classmethod
    def from_cells(
        cls, tile_id: int, domain: MInterval, cell_type: CellType, cells: np.ndarray
    ) -> "TilePayload":
        return cls(
            tile_id=tile_id,
            domain=str(domain),
            dtype=cell_type.name,
            payload=_as_payload(cells),
        )

    def cells(self) -> np.ndarray:
        """Read-only ndarray view over the payload bytes (zero-copy)."""
        shape = MInterval.parse(self.domain).shape
        return np.frombuffer(self.payload, dtype=_dtype_for(self.dtype)).reshape(
            shape
        )

    @property
    def nbytes(self) -> int:
        return len(memoryview(self.payload))


@dataclass
class SubReadStats:
    """Storage-cost accounting of serving one response unit.

    When the unit was answered through the admission layer the tape-byte
    and exchange numbers are that query's exact attributed share of fused
    sweeps; a batch served via :meth:`Heaven.serve_sub_reads` reports the
    whole batch's totals on each member (``shared=True``).
    """

    bytes_useful: int = 0
    bytes_from_tape: int = 0
    exchanges: int = 0
    virtual_seconds: float = 0.0
    faults: int = 0
    restages: int = 0
    super_tiles_staged: int = 0
    #: the staging numbers above are batch-wide, not per-unit
    shared: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "bytes_useful": self.bytes_useful,
            "bytes_from_tape": self.bytes_from_tape,
            "exchanges": self.exchanges,
            "virtual_seconds": self.virtual_seconds,
            "faults": self.faults,
            "restages": self.restages,
            "super_tiles_staged": self.super_tiles_staged,
            "shared": self.shared,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SubReadStats":
        return cls(
            bytes_useful=int(data.get("bytes_useful", 0)),
            bytes_from_tape=int(data.get("bytes_from_tape", 0)),
            exchanges=int(data.get("exchanges", 0)),
            virtual_seconds=float(data.get("virtual_seconds", 0.0)),
            faults=int(data.get("faults", 0)),
            restages=int(data.get("restages", 0)),
            super_tiles_staged=int(data.get("super_tiles_staged", 0)),
            shared=bool(data.get("shared", False)),
        )


@dataclass
class SubReadResponse:
    """The answer to one :class:`SubReadRequest`.

    Either ``error`` is set (typed failure inside the serving node) or the
    unit carries its tiles — and, for region-form requests answered by the
    admission layer, optionally the pre-assembled region cells.
    """

    request_id: str
    object_name: str
    node_id: str = ""
    tiles: List[TilePayload] = field(default_factory=list)
    #: pre-assembled cells of the request's region (region-form units)
    region_cells: Optional[Payload] = None
    region: str = ""
    dtype: str = ""
    stats: SubReadStats = field(default_factory=SubReadStats)
    error: Optional[WireError] = None
    #: virtual completion time on the serving node's cluster timeline
    completion_v: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    def assembled(self) -> Optional[np.ndarray]:
        """Region cells as a read-only ndarray, when pre-assembled."""
        if self.region_cells is None:
            return None
        shape = MInterval.parse(self.region).shape
        return np.frombuffer(
            self.region_cells, dtype=_dtype_for(self.dtype)
        ).reshape(shape)

    def encode(self) -> bytes:
        payloads: List[Payload] = [tile.payload for tile in self.tiles]
        header: Dict[str, object] = {
            "kind": "sub_read_response",
            "request_id": self.request_id,
            "object": self.object_name,
            "node_id": self.node_id,
            "region": self.region,
            "dtype": self.dtype,
            "tiles": [
                {"tile_id": t.tile_id, "domain": t.domain, "dtype": t.dtype}
                for t in self.tiles
            ],
            "has_region_cells": self.region_cells is not None,
            "stats": self.stats.to_dict(),
            "error": None if self.error is None else self.error.to_dict(),
            "completion_v": self.completion_v,
        }
        if self.region_cells is not None:
            payloads.append(self.region_cells)
        return encode_frames(header, payloads)

    @classmethod
    def decode(cls, data: Payload) -> "SubReadResponse":
        header, frames = decode_frames(data)
        if header.get("kind") != "sub_read_response":
            raise WireFormatError(
                f"not a sub_read_response header: {header.get('kind')!r}"
            )
        tile_meta = list(header.get("tiles", []))
        has_region = bool(header.get("has_region_cells"))
        expected = len(tile_meta) + (1 if has_region else 0)
        if len(frames) != expected:
            raise WireFormatError(
                f"expected {expected} payload frame(s), got {len(frames)}"
            )
        tiles = [
            TilePayload(
                tile_id=int(meta["tile_id"]),
                domain=str(meta["domain"]),
                dtype=str(meta["dtype"]),
                payload=frame,
            )
            for meta, frame in zip(tile_meta, frames)
        ]
        error = header.get("error")
        return cls(
            request_id=str(header["request_id"]),
            object_name=str(header["object"]),
            node_id=str(header.get("node_id", "")),
            tiles=tiles,
            region_cells=frames[-1] if has_region else None,
            region=str(header.get("region", "")),
            dtype=str(header.get("dtype", "")),
            stats=SubReadStats.from_dict(dict(header.get("stats", {}))),
            error=None if error is None else WireError.from_dict(dict(error)),
            completion_v=float(header.get("completion_v", 0.0)),
        )


@dataclass(frozen=True)
class ObjectDescriptor:
    """Shardable metadata of one object: what a service node routes by.

    ``tile_domains`` is indexed by tile id; ``tile_segments`` maps each
    tile to its super-tile segment key once archived — the consistent-hash
    shard key, so every tile of one super-tile lands on the same node.
    Disk-resident objects shard per tile under a synthetic key.
    """

    collection: str
    name: str
    domain: str
    dtype: str
    tile_domains: Tuple[str, ...]
    tile_segments: Dict[int, str] = field(default_factory=dict)
    archived: bool = False

    def shard_key(self, tile_id: int) -> str:
        segment = self.tile_segments.get(tile_id)
        if segment is not None:
            return segment
        return f"{self.collection}/{self.name}/t{tile_id}"

    def to_json(self) -> str:
        return json.dumps(
            {
                "collection": self.collection,
                "name": self.name,
                "domain": self.domain,
                "dtype": self.dtype,
                "tile_domains": list(self.tile_domains),
                "tile_segments": {
                    str(tile_id): key
                    for tile_id, key in sorted(self.tile_segments.items())
                },
                "archived": self.archived,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ObjectDescriptor":
        data = json.loads(text)
        return cls(
            collection=str(data["collection"]),
            name=str(data["name"]),
            domain=str(data["domain"]),
            dtype=str(data["dtype"]),
            tile_domains=tuple(str(d) for d in data["tile_domains"]),
            tile_segments={
                int(tile_id): str(key)
                for tile_id, key in data.get("tile_segments", {}).items()
            },
            archived=bool(data.get("archived", False)),
        )
