"""Inter-super-tile clustering: placing super-tiles on media (Kapitel 3.3).

Where super-tiles land decides how many media exchanges a query pays.
HEAVEN's clustered placement writes consecutive super-tiles (which are
spatial neighbours, thanks to STAR's cluster order) contiguously onto as few
media as possible.  The scatter baseline round-robins them across media —
the behaviour of a naive archive writing whatever drive is free — and is
what the clustering experiment (E8) compares against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import HeavenError
from ..tertiary.library import TapeLibrary
from .super_tile import SuperTile


@dataclass(frozen=True)
class Placement:
    """One planned write: which medium a super-tile goes to.

    ``medium_id`` of None lets the library pick its current fill target
    (sequential clustered filling).
    """

    super_tile: SuperTile
    medium_id: Optional[str]


class PlacementPolicy:
    """Strategy assigning super-tiles to media before export."""

    name = "abstract"

    def plan(
        self, super_tiles: Sequence[SuperTile], library: TapeLibrary
    ) -> List[Placement]:
        raise NotImplementedError


class ClusteredPlacement(PlacementPolicy):
    """HEAVEN's default: fill media sequentially in cluster order.

    Neighbouring super-tiles share a medium and sit back-to-back, so a
    query touching k consecutive super-tiles pays at most
    ``1 + k*size/capacity`` exchanges and short forward winds.
    """

    name = "clustered"

    def plan(
        self, super_tiles: Sequence[SuperTile], library: TapeLibrary
    ) -> List[Placement]:
        return [Placement(st, None) for st in super_tiles]


class ScatterPlacement(PlacementPolicy):
    """Baseline: round-robin super-tiles across *spread* media.

    Models an unclustered archive; consecutive super-tiles live on
    different media, so even small queries force many exchanges.
    """

    name = "scatter"

    def __init__(self, spread: int = 4) -> None:
        if spread < 1:
            raise HeavenError("scatter spread must be >= 1")
        self.spread = spread

    def plan(
        self, super_tiles: Sequence[SuperTile], library: TapeLibrary
    ) -> List[Placement]:
        if not super_tiles:
            return []
        total = sum(st.size_bytes for st in super_tiles)
        capacity = library.profile.media_capacity_bytes
        spread = self.spread
        # Make sure the round-robin set can hold everything.
        while spread * capacity < total:
            spread += 1
        media = [library.new_medium() for _ in range(spread)]
        placements: List[Placement] = []
        fill = [0] * spread
        for position, super_tile in enumerate(super_tiles):
            target = position % spread
            # Skip media that ran out of space (rare; spread was sized above).
            attempts = 0
            while fill[target] + super_tile.size_bytes > capacity:
                target = (target + 1) % spread
                attempts += 1
                if attempts > spread:
                    media.append(library.new_medium())
                    fill.append(0)
                    spread += 1
                    target = spread - 1
                    break
            fill[target] += super_tile.size_bytes
            placements.append(Placement(super_tile, media[target].medium_id))
        return placements


class InterleavedObjectPlacement(PlacementPolicy):
    """Baseline for multi-object archives: strict arrival-order interleaving.

    Models the paper's "Generierungsordnung": data lands on tape in the
    order the HPC jobs emitted it, interleaving objects that are later read
    separately.  For a single object this equals clustered placement; its
    effect shows when several objects are exported together.
    """

    name = "interleaved"

    def plan(
        self, super_tiles: Sequence[SuperTile], library: TapeLibrary
    ) -> List[Placement]:
        return [Placement(st, None) for st in super_tiles]


def interleave_round_robin(
    per_object: Sequence[Sequence[SuperTile]],
) -> List[SuperTile]:
    """Interleave several objects' super-tile streams round-robin.

    Produces the generation-order write sequence the
    :class:`InterleavedObjectPlacement` baseline expects.
    """
    out: List[SuperTile] = []
    cursors = [0] * len(per_object)
    remaining = sum(len(seq) for seq in per_object)
    while remaining:
        for which, seq in enumerate(per_object):
            if cursors[which] < len(seq):
                out.append(seq[cursors[which]])
                cursors[which] += 1
                remaining -= 1
    return out
