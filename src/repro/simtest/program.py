"""Seeded workload programs for whole-system simulation testing.

A :class:`WorkloadProgram` is a deterministic, JSON-serialisable recipe:
one :class:`SimConfig` describing the simulated environment (drive count,
media size, cache budgets, eviction policy, fault mixins) plus a flat list
of :class:`Op` steps — the randomized multi-user operation sequence the
:class:`~repro.simtest.runner.SimRunner` executes against the full HEAVEN
stack and, in lockstep, against the trivial in-memory reference model.

Programs are *closed under deletion*: every op carries everything needed
to apply it, and the runner skips ops whose preconditions no longer hold
(e.g. a read of an object whose ``ingest`` was shrunk away).  That is what
lets the shrinker minimise a failing program by deleting operations.

``generate_program(seed, num_ops)`` with the same arguments always emits
the same program: all randomness comes from one ``random.Random(seed)``.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

KB = 1024

#: operation kinds a program may contain
OP_KINDS: Tuple[str, ...] = (
    "ingest",
    "archive",
    "read",
    "frame_read",
    "read_many",
    "concurrent",
    "service",
    "update",
    "reimport",
    "delete",
    "cache_resize",
    "fault",
    "offline",
)

#: fault mixin names composable into a program's random fault spec
FAULT_MIXINS: Tuple[str, ...] = ("mount", "media", "stall")

#: one-shot fault sites the ``fault`` op may schedule
FAULT_SITES: Tuple[str, ...] = ("mount", "robot", "media", "stall")


@dataclass(frozen=True)
class Op:
    """One step of a workload program (kind + JSON-able parameters)."""

    kind: str
    params: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Op":
        return cls(kind=str(data["kind"]), params=dict(data.get("params", {})))

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"{self.kind}({inner})"


@dataclass(frozen=True)
class SimConfig:
    """Environment knobs of one simulated run (all JSON-able scalars)."""

    num_drives: int = 2
    parallel_drives: int = 2
    media_kb: int = 128
    super_tile_kb: int = 24
    disk_cache_kb: int = 96
    memory_cache_kb: int = 4096
    policy: str = "lru"
    compression: str = "none"
    partial_reads: bool = True
    scheduling: bool = True
    prefetch: str = "none"
    #: random fault mixins composed into the plan's spec (see repro.faults)
    fault_mixins: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["fault_mixins"] = list(self.fault_mixins)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimConfig":
        data = dict(data)
        data["fault_mixins"] = tuple(data.get("fault_mixins", ()))
        return cls(**data)


@dataclass
class WorkloadProgram:
    """A seed, an environment and the operation sequence to run in it."""

    seed: int
    config: SimConfig
    ops: List[Op]

    def __len__(self) -> int:
        return len(self.ops)

    def replace_ops(self, ops: Sequence[Op]) -> "WorkloadProgram":
        return WorkloadProgram(seed=self.seed, config=self.config, ops=list(ops))

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "config": self.config.to_dict(),
                "ops": [op.to_dict() for op in self.ops],
            },
            indent=indent,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "WorkloadProgram":
        data = json.loads(text)
        return cls(
            seed=int(data["seed"]),
            config=SimConfig.from_dict(data["config"]),
            ops=[Op.from_dict(op) for op in data["ops"]],
        )


# -- generation ---------------------------------------------------------------


@dataclass
class _ObjectState:
    """Generator-side bookkeeping of one simulated object."""

    collection: str
    side: int
    archived: bool = False


def _draw_config(rng: random.Random) -> SimConfig:
    mixins: Tuple[str, ...] = ()
    if rng.random() < 0.25:
        mixins = tuple(
            sorted(rng.sample(FAULT_MIXINS, rng.randint(1, len(FAULT_MIXINS))))
        )
    drives = rng.choice([1, 1, 2, 2, 4, 8])
    return SimConfig(
        num_drives=drives,
        parallel_drives=drives,
        media_kb=rng.choice([96, 128, 256]),
        super_tile_kb=rng.choice([16, 24, 32]),
        disk_cache_kb=rng.choice([64, 96, 160, 256]),
        memory_cache_kb=4096,
        policy=rng.choice(["lru", "fifo", "lfu", "size", "gds"]),
        compression=rng.choice(["none", "none", "none", "zlib"]),
        partial_reads=rng.random() < 0.8,
        scheduling=rng.random() < 0.9,
        prefetch="sequential" if rng.random() < 0.15 else "none",
        fault_mixins=mixins,
    )


def _region_str(rng: random.Random, side: int) -> str:
    axes = []
    for _dim in range(2):
        lo = rng.randrange(0, side - 1)
        hi = rng.randrange(lo, side)
        axes.append(f"{lo}:{hi}")
    return ",".join(axes)


def _box_str(rng: random.Random, side: int) -> str:
    return _region_str(rng, side)


def generate_program(seed: int, num_ops: int) -> WorkloadProgram:
    """Emit a randomized multi-user operation sequence for *seed*.

    The generator keeps a symbolic model of which objects exist and which
    are archived, so the emitted sequence is *plausible* (reads target
    live objects, reimports target archived ones) — but the runner never
    relies on that: shrunk subsequences stay executable.
    """
    rng = random.Random(seed)
    config = _draw_config(rng)
    ops: List[Op] = []
    objects: Dict[str, _ObjectState] = {}
    next_object = 0
    offline = False
    offline_ttl = 0

    def ingest_op() -> Op:
        nonlocal next_object
        name = f"o{next_object}"
        next_object += 1
        collection = f"u{rng.randrange(3)}"
        side = rng.choice([48, 64, 80, 96])
        objects[name] = _ObjectState(collection=collection, side=side)
        return Op(
            "ingest",
            {
                "collection": collection,
                "object": name,
                "side": side,
                "tile": 16,
                "source_seed": rng.randrange(1_000_000),
            },
        )

    while len(ops) < num_ops:
        if offline:
            offline_ttl -= 1
            if offline_ttl <= 0:
                ops.append(Op("offline", {"offline": False}))
                offline = False
                continue
        live = sorted(objects)
        archived = [n for n in live if objects[n].archived]
        choices: List[Tuple[str, float]] = []
        if len(objects) < 4:
            choices.append(("ingest", 3.0))
        if any(not objects[n].archived for n in live):
            choices.append(("archive", 3.0))
        if live:
            choices.append(("read", 6.0))
            choices.append(("frame_read", 2.0))
            choices.append(("read_many", 3.0))
            choices.append(("concurrent", 2.5))
            choices.append(("service", 2.0))
            choices.append(("update", 2.0))
            choices.append(("delete", 0.8))
        if archived:
            choices.append(("reimport", 1.5))
        choices.append(("cache_resize", 1.0))
        choices.append(("fault", 1.5))
        if not offline:
            choices.append(("offline", 0.6))
        kinds = [kind for kind, _w in choices]
        weights = [w for _kind, w in choices]
        kind = rng.choices(kinds, weights=weights, k=1)[0]

        if kind == "ingest":
            ops.append(ingest_op())
        elif kind == "archive":
            name = rng.choice([n for n in live if not objects[n].archived])
            state = objects[name]
            state.archived = True
            ops.append(
                Op(
                    "archive",
                    {
                        "collection": state.collection,
                        "object": name,
                        "keep_disk_copy": rng.random() < 0.2,
                    },
                )
            )
        elif kind == "read":
            name = rng.choice(live)
            state = objects[name]
            ops.append(
                Op(
                    "read",
                    {
                        "collection": state.collection,
                        "object": name,
                        "region": _region_str(rng, state.side),
                    },
                )
            )
        elif kind == "frame_read":
            name = rng.choice(live)
            state = objects[name]
            boxes = [
                _box_str(rng, state.side) for _b in range(rng.randint(1, 2))
            ]
            ops.append(
                Op(
                    "frame_read",
                    {
                        "collection": state.collection,
                        "object": name,
                        "boxes": boxes,
                        "fill": float(rng.choice([0.0, -1.0, 7.5])),
                    },
                )
            )
        elif kind == "read_many":
            count = rng.randint(2, min(4, max(2, len(live) + 1)))
            requests = []
            for _r in range(count):
                name = rng.choice(live)
                state = objects[name]
                requests.append(
                    [state.collection, name, _region_str(rng, state.side)]
                )
            ops.append(Op("read_many", {"requests": requests}))
        elif kind == "concurrent":
            # 2-8 overlapping queries, each with its own arrival offset,
            # weight, and a seeded interleaving schedule — the admission
            # layer fuses their staging into shared sweeps.
            count = rng.randint(2, 8)
            queries = []
            for _q in range(count):
                name = rng.choice(live)
                state = objects[name]
                queries.append(
                    [
                        state.collection,
                        name,
                        _region_str(rng, state.side),
                        round(rng.choice([0.0, 0.0, rng.uniform(0.0, 20.0)]), 3),
                        rng.choice([0.5, 1.0, 1.0, 2.0]),
                    ]
                )
            ops.append(
                Op(
                    "concurrent",
                    {
                        "queries": queries,
                        "schedule_seed": rng.randrange(1_000_000),
                        "holdback_s": rng.choice([0.0, 0.0, 0.0, 2.0, 5.0]),
                        "aging_bound_s": rng.choice([0.0, 0.0, 3600.0]),
                    },
                )
            )
        elif kind == "service":
            # Concurrent multi-tenant reads through the SN/DN service
            # tier (data nodes share the run's HEAVEN instance, so the
            # oracle still describes the bytes they must serve).
            count = rng.randint(2, 6)
            queries = []
            for _q in range(count):
                name = rng.choice(live)
                state = objects[name]
                queries.append(
                    [state.collection, name, _region_str(rng, state.side)]
                )
            ops.append(
                Op(
                    "service",
                    {
                        "queries": queries,
                        "nodes": rng.choice([1, 2, 2, 4]),
                        "tenants": rng.randint(1, 3),
                    },
                )
            )
        elif kind == "update":
            name = rng.choice(live)
            state = objects[name]
            lo0 = rng.randrange(0, state.side - 8)
            lo1 = rng.randrange(0, state.side - 8)
            extent = rng.choice([4, 8])
            region = (
                f"{lo0}:{lo0 + extent - 1},{lo1}:{lo1 + extent - 1}"
            )
            ops.append(
                Op(
                    "update",
                    {
                        "collection": state.collection,
                        "object": name,
                        "region": region,
                        "value_seed": rng.randrange(1_000_000),
                    },
                )
            )
        elif kind == "reimport":
            name = rng.choice(archived)
            state = objects[name]
            state.archived = False
            ops.append(
                Op(
                    "reimport",
                    {"collection": state.collection, "object": name},
                )
            )
        elif kind == "delete":
            name = rng.choice(live)
            state = objects.pop(name)
            ops.append(
                Op("delete", {"collection": state.collection, "object": name})
            )
        elif kind == "cache_resize":
            ops.append(
                Op(
                    "cache_resize",
                    {"disk_cache_kb": rng.choice([64, 96, 160, 256, 512])},
                )
            )
        elif kind == "fault":
            ops.append(
                Op(
                    "fault",
                    {
                        "site": rng.choice(FAULT_SITES),
                        "count": rng.randint(1, 2),
                    },
                )
            )
        elif kind == "offline":
            offline = True
            offline_ttl = rng.randint(1, 3)
            ops.append(Op("offline", {"offline": True}))

    if offline:
        ops.append(Op("offline", {"offline": False}))
    return WorkloadProgram(seed=seed, config=config, ops=ops)
