"""ddmin-style shrinking of failing workload programs.

When a program trips an invariant, the raw repro is usually dozens of
operations long.  Programs are closed under deletion (the runner skips
ops whose preconditions died with a deleted predecessor), so a simple
delta-debugging loop applies: try deleting chunks of operations, keep any
deletion after which the program *still fails*, halve the chunk size when
a whole pass removes nothing, and finish with a per-operation sweep.
Every candidate runs in a fresh :class:`~repro.simtest.runner.SimRunner`,
so shrinking is as deterministic as the runs themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .program import Op, WorkloadProgram
from .runner import SimResult, run_program


@dataclass
class ShrinkOutcome:
    """The minimised program plus bookkeeping about the search."""

    program: WorkloadProgram
    result: SimResult
    runs: int
    original_ops: int

    @property
    def minimized_ops(self) -> int:
        return len(self.program.ops)


def default_still_fails(
    mutate: Optional[str] = None,
) -> Callable[[WorkloadProgram], Optional[SimResult]]:
    """Predicate factory: a candidate fails iff a fresh run has violations."""

    def predicate(candidate: WorkloadProgram) -> Optional[SimResult]:
        result = run_program(candidate, mutate=mutate)
        return result if result.violations else None

    return predicate


def shrink_program(
    program: WorkloadProgram,
    failing_result: SimResult,
    still_fails: Callable[[WorkloadProgram], Optional[SimResult]],
    max_runs: int = 200,
) -> ShrinkOutcome:
    """Minimise *program* by deleting operations while it still fails.

    *still_fails* runs a candidate and returns its :class:`SimResult`
    when the failure reproduces (``None`` otherwise).  The search is
    budgeted by *max_runs* candidate executions; the best program found
    within the budget is returned — shrinking never has to be perfect,
    only monotone.
    """
    best_ops: List[Op] = list(program.ops)
    best_result = failing_result
    runs = 0
    chunk = max(1, len(best_ops) // 2)
    while runs < max_runs:
        removed_any = False
        start = 0
        while start < len(best_ops) and runs < max_runs:
            candidate_ops = best_ops[:start] + best_ops[start + chunk:]
            if not candidate_ops:
                start += chunk
                continue
            candidate = program.replace_ops(candidate_ops)
            runs += 1
            result = still_fails(candidate)
            if result is not None:
                best_ops = candidate_ops
                best_result = result
                removed_any = True
                # Keep *start*: the next chunk slid into this position.
            else:
                start += chunk
        if removed_any:
            continue  # another pass at the same granularity
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)
    return ShrinkOutcome(
        program=program.replace_ops(best_ops),
        result=best_result,
        runs=runs,
        original_ops=len(program.ops),
    )
