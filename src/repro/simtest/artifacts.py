"""Self-contained repro artifacts for failing simulation runs.

A failure produces two files in the output directory:

* ``repro_seed<seed>.py`` — a standalone script embedding the (minimised)
  program as JSON; running it with ``PYTHONPATH=src python <file>``
  replays the exact failure and exits non-zero while it reproduces.
* ``failure_seed<seed>.txt`` — the violation list plus the event-log
  window of the first violating operation, so the divergence can be read
  without re-running anything.
"""

from __future__ import annotations

import os
from typing import List, Optional

from .runner import SimResult


def _event_window_text(result: SimResult, op_index: int) -> List[str]:
    """Re-run-free event dump is impossible post hoc, so the runner's
    final log is windowed by replaying cursor arithmetic: we simply show
    the op's step record and every violation verbatim instead."""
    lines = []
    for step in result.steps:
        marker = ">>>" if step.index == op_index else "   "
        lines.append(
            f"{marker} op[{step.index}] {step.kind:<12} {step.status:<9} {step.detail}"
        )
    return lines


def render_failure_report(result: SimResult, mutate: Optional[str]) -> str:
    """Human-readable failure summary: violations + annotated op trace."""
    lines = [
        f"simtest failure — seed {result.program.seed}, "
        f"{len(result.program.ops)} op(s), mutate={mutate or 'none'}",
        f"run: {result.summary()}",
        "",
        "violations:",
    ]
    for violation in result.violations:
        lines.append(f"  - {violation.describe()}")
    first = result.violations[0].op_index if result.violations else -1
    lines += ["", "operation trace (>>> marks the first violating op):"]
    lines += _event_window_text(result, first)
    lines += [
        "",
        "program (replay with: python -m repro simtest --replay <this-json>):",
        result.program.to_json(),
    ]
    return "\n".join(lines) + "\n"


_REPRO_TEMPLATE = '''\
#!/usr/bin/env python
"""Auto-generated simtest repro — seed {seed}, {ops} operation(s).

Run with the repository's src/ on PYTHONPATH:

    PYTHONPATH=src python {filename}

Exits 1 while the failure still reproduces, 0 once it is fixed.
"""

import sys

from repro.simtest import replay_json

MUTATE = {mutate!r}

PROGRAM = r"""
{program_json}
"""


def main() -> int:
    result = replay_json(PROGRAM, mutate=MUTATE)
    if result.violations:
        print(f"reproduced {{len(result.violations)}} violation(s):")
        for violation in result.violations:
            print(f"  - {{violation.describe()}}")
        return 1
    print("failure no longer reproduces")
    return 0


if __name__ == "__main__":
    sys.exit(main())
'''


def write_repro_artifacts(
    result: SimResult, out_dir: str, mutate: Optional[str] = None
) -> List[str]:
    """Write the repro script + failure report; returns the file paths."""
    os.makedirs(out_dir, exist_ok=True)
    seed = result.program.seed
    script_path = os.path.join(out_dir, f"repro_seed{seed}.py")
    report_path = os.path.join(out_dir, f"failure_seed{seed}.txt")
    with open(script_path, "w", encoding="utf-8") as handle:
        handle.write(
            _REPRO_TEMPLATE.format(
                seed=seed,
                ops=len(result.program.ops),
                filename=os.path.basename(script_path),
                mutate=mutate,
                program_json=result.program.to_json(),
            )
        )
    with open(report_path, "w", encoding="utf-8") as handle:
        handle.write(render_failure_report(result, mutate))
    return [script_path, report_path]
