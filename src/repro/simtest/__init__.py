"""Deterministic whole-system simulation testing harness.

FoundationDB-style simulation testing for the HEAVEN stack: a seeded
:func:`generate_program` emits randomized multi-user operation sequences
over the full hierarchy (ingest, archive, subwindow/frame/batch reads,
concurrent admission-scheduled query groups, updates, reimports, cache
resizes, fault injection, 1–8 parallel
drives); :class:`SimRunner` executes them under virtual time against
both the real stack and a trivial in-memory oracle, checking byte
identity and conservation invariants after every step; failures shrink
via :func:`shrink_program` to a minimal op sequence and are written out
as self-contained repro scripts.

CLI: ``python -m repro simtest --seed N --ops M`` (see ``--help``).
Docs: ``docs/TESTING.md``.
"""

from .artifacts import render_failure_report, write_repro_artifacts
from .invariants import (
    check_clock_monotonic,
    check_global_clock,
    check_no_restage_growth,
    check_quiescent,
    oracle_mismatch,
)
from .program import (
    FAULT_MIXINS,
    OP_KINDS,
    Op,
    SimConfig,
    WorkloadProgram,
    generate_program,
)
from .reference import ReferenceModel
from .runner import (
    MIXIN_SPECS,
    MUTATIONS,
    SimResult,
    SimRunner,
    StepResult,
    Violation,
    replay_json,
    run_program,
)
from .shrink import ShrinkOutcome, default_still_fails, shrink_program

__all__ = [
    "FAULT_MIXINS",
    "MIXIN_SPECS",
    "MUTATIONS",
    "OP_KINDS",
    "Op",
    "ReferenceModel",
    "ShrinkOutcome",
    "SimConfig",
    "SimResult",
    "SimRunner",
    "StepResult",
    "Violation",
    "WorkloadProgram",
    "check_clock_monotonic",
    "check_global_clock",
    "check_no_restage_growth",
    "check_quiescent",
    "default_still_fails",
    "generate_program",
    "oracle_mismatch",
    "render_failure_report",
    "replay_json",
    "run_program",
    "shrink_program",
    "write_repro_artifacts",
]
