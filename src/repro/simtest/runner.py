"""Lockstep execution of a workload program against HEAVEN and the oracle.

The :class:`SimRunner` builds one full HEAVEN stack (virtual time, tape
library, both cache tiers, fault plan, observability on) from a program's
:class:`~repro.simtest.program.SimConfig`, then applies the program's
operations one by one — mirroring every data-changing effect into the
trivial :class:`~repro.simtest.reference.ReferenceModel` — and checks the
invariant battery after each step:

1. **byte identity** of every returned array against the oracle;
2. **conservation**: quiescence (no leaked pins, no active timeline,
   caches within capacity), per-drive and global clock monotonicity,
   `RetrievalReport` fields reconciling with metric deltas and the
   event-log window;
3. **no thrash**: `repro_restages_total` must not grow within one op.

Operations whose preconditions don't hold (object missing after the
shrinker deleted its ingest, duplicate archive, ...) are *skipped*, which
keeps programs closed under deletion.  Operations that fail inside the
storage stack with a typed error (library offline, retry budget spent)
are recorded as ``failed-op`` — expected behaviour under fault injection,
not a violation; mutating ops that fail taint their object so later steps
don't compare against half-applied state.

Seeded mutations (``mutate="oracle-flip"`` / ``"pin-leak"``) deliberately
break the stack-vs-oracle contract so the harness can prove it catches
and shrinks real bugs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..arrays import DOUBLE, MDD, HashedNoiseSource, MInterval, RegularTiling
from ..core.config import HeavenConfig
from ..core.framing import MultiBoxFrame
from ..core.heaven import Heaven, RetrievalReport
from ..errors import HeavenError, StorageError
from ..faults import FaultPlan, FaultSpec, compose_specs
from ..obs.reconcile import (
    metrics_delta,
    metrics_snapshot,
    reconcile_report,
    reconcile_shared_tape_bytes,
    reconcile_tape_bytes,
)
from ..tertiary.profiles import DLT_7000, scaled_profile
from .invariants import (
    check_clock_monotonic,
    check_global_clock,
    check_no_restage_growth,
    check_quiescent,
    oracle_mismatch,
)
from .program import KB, Op, WorkloadProgram
from .reference import ReferenceModel

#: named fault mixins a SimConfig can compose into its random fault spec
MIXIN_SPECS: Dict[str, FaultSpec] = {
    "mount": FaultSpec(mount_failure_rate=0.04, mount_failure_penalty_s=5.0),
    "media": FaultSpec(media_error_rate=0.03, media_error_penalty_s=2.0),
    "stall": FaultSpec(drive_stall_rate=0.08, drive_stall_max_s=4.0),
}

#: supported seeded-bug mutations (see module docstring)
MUTATIONS: Tuple[str, ...] = ("oracle-flip", "pin-leak")


@dataclass(frozen=True)
class Violation:
    """One broken invariant, attributed to the operation that tripped it."""

    op_index: int
    op: str
    invariant: str
    detail: str

    def describe(self) -> str:
        return f"op[{self.op_index}] {self.op}: [{self.invariant}] {self.detail}"


@dataclass(frozen=True)
class StepResult:
    """Outcome of one applied operation."""

    index: int
    kind: str
    status: str  # "ok" | "skipped" | "failed-op"
    detail: str = ""


@dataclass
class SimResult:
    """Everything one simulation run produced."""

    program: WorkloadProgram
    steps: List[StepResult]
    violations: List[Violation]
    #: digest over every simulator event (time, duration, kind, device,
    #: detail, bytes) — two runs of the same program must agree exactly
    event_digest: str = ""
    #: digest over every RetrievalReport the run produced
    report_digest: str = ""
    final_virtual_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        applied = sum(1 for s in self.steps if s.status == "ok")
        skipped = sum(1 for s in self.steps if s.status == "skipped")
        failed = sum(1 for s in self.steps if s.status == "failed-op")
        return (
            f"{len(self.steps)} ops ({applied} applied, {skipped} skipped, "
            f"{failed} failed-op), {len(self.violations)} violation(s), "
            f"t={self.final_virtual_seconds:.1f}s virtual, "
            f"events={self.event_digest[:12]}"
        )


class SimRunner:
    """Execute one :class:`WorkloadProgram` with full invariant checking."""

    def __init__(
        self, program: WorkloadProgram, mutate: Optional[str] = None
    ) -> None:
        if mutate is not None and mutate not in MUTATIONS:
            raise ValueError(f"unknown mutation {mutate!r}; known: {MUTATIONS}")
        self.program = program
        self.mutate = mutate
        self._pin_leaked = False
        cfg = program.config
        mixins = [MIXIN_SPECS[name] for name in cfg.fault_mixins]
        spec = compose_specs(*mixins) if mixins else FaultSpec()
        self.plan = FaultPlan(seed=program.seed, spec=spec)
        self.heaven = Heaven(
            HeavenConfig(
                tape_profile=scaled_profile(DLT_7000, cfg.media_kb * KB),
                num_drives=cfg.num_drives,
                parallel_drives=cfg.parallel_drives,
                super_tile_bytes=cfg.super_tile_kb * KB,
                disk_cache_bytes=cfg.disk_cache_kb * KB,
                disk_cache_policy=cfg.policy,
                memory_cache_bytes=cfg.memory_cache_kb * KB,
                compression=cfg.compression,
                partial_super_tile_reads=cfg.partial_reads,
                scheduling=cfg.scheduling,
                prefetch=cfg.prefetch,
                fault_plan=self.plan,
            ),
            observability=True,
        )
        self.reference = ReferenceModel()
        self._collections: Set[str] = set()
        #: objects whose last mutating op failed mid-flight; their on-tape
        #: state may legitimately diverge from the oracle, so they are
        #: retired from the rest of the run
        self._tainted: Set[str] = set()
        self._drive_clock: Dict[str, float] = {}
        self._events = hashlib.sha256()
        self._reports = hashlib.sha256()
        self.violations: List[Violation] = []
        self.steps: List[StepResult] = []

    # -- public API ----------------------------------------------------------

    def run(self) -> SimResult:
        for index, op in enumerate(self.program.ops):
            self._step(index, op)
        log = self.heaven.clock.log
        for event in log.window(0):
            self._events.update(
                f"{event.time!r}|{event.duration!r}|{event.kind}|"
                f"{event.device}|{event.detail}|{event.bytes}\n".encode()
            )
        return SimResult(
            program=self.program,
            steps=self.steps,
            violations=self.violations,
            event_digest=self._events.hexdigest(),
            report_digest=self._reports.hexdigest(),
            final_virtual_seconds=self.heaven.clock.now,
        )

    # -- one step ------------------------------------------------------------

    def _step(self, index: int, op: Op) -> None:
        heaven = self.heaven
        log = heaven.clock.log
        cursor = log.cursor()
        now_before = heaven.clock.now
        restages_before = heaven.restages
        faults_before = heaven.library.faults.stats.total

        status, detail, report, window_reconcile = self._apply(index, op)
        self.steps.append(StepResult(index, op.kind, status, detail))

        self._check_mutation_hook(index, op, status)

        window = log.window(cursor)
        for problem in check_clock_monotonic(window, self._drive_clock):
            self._violate(index, op, "clock-monotonic", problem)
        problem = check_global_clock(now_before, heaven.clock.now)
        if problem:
            self._violate(index, op, "clock-monotonic", problem)
        problem = check_quiescent(heaven)
        if problem:
            self._violate(index, op, "quiescence", problem)
        problem = check_no_restage_growth(restages_before, heaven.restages)
        if problem:
            self._violate(index, op, "restage", problem)
        if report is not None and status == "ok":
            self._reports.update(f"{index}|{report!r}\n".encode())
            if window_reconcile is not None:
                delta = metrics_delta(window_reconcile, metrics_snapshot(
                    heaven.obs.metrics
                ))
                # A mount fault charges the robot's exchange but aborts the
                # drive load the report's span window counts, so the two
                # exchange tallies legitimately differ on faulted reads.
                skip = ("exchanges",) if (
                    heaven.library.faults.stats.total > faults_before
                ) else ()
                for problem in reconcile_report(report, delta, skip=skip):
                    self._violate(index, op, "reconcile", problem)
                problem = reconcile_tape_bytes(report, log, cursor)
                if problem:
                    self._violate(index, op, "reconcile", problem)

    def _violate(self, index: int, op: Op, invariant: str, detail: str) -> None:
        self.violations.append(Violation(index, op.describe(), invariant, detail))

    def _check_mutation_hook(self, index: int, op: Op, status: str) -> None:
        """Fire the ``pin-leak`` seeded bug once the cache has an entry."""
        if (
            self.mutate == "pin-leak"
            and not self._pin_leaked
            and status == "ok"
            and self.heaven.disk_cache.keys()
        ):
            self.heaven.disk_cache.pin(sorted(self.heaven.disk_cache.keys())[0])
            self._pin_leaked = True

    # -- op dispatch ---------------------------------------------------------

    def _apply(
        self, index: int, op: Op
    ) -> Tuple[str, str, Optional[RetrievalReport], Optional[Dict[str, float]]]:
        """Apply one op; returns (status, detail, report, metrics_before)."""
        handler = getattr(self, f"_op_{op.kind}", None)
        if handler is None:
            return "skipped", f"unknown op kind {op.kind!r}", None, None
        try:
            return handler(index, op.params)
        except (StorageError, HeavenError) as exc:
            # Typed storage failure (offline library, retry budget spent,
            # unevictable cache, ...) — expected under fault injection.
            self._taint_if_mutating(op)
            return "failed-op", f"{type(exc).__name__}: {exc}", None, None

    def _taint_if_mutating(self, op: Op) -> None:
        if op.kind in ("archive", "update", "reimport", "ingest"):
            name = op.params.get("object")
            if isinstance(name, str):
                self._tainted.add(name)
                self.reference.delete(str(op.params.get("collection", "")), name)

    def _usable(self, collection: str, name: str) -> bool:
        return name not in self._tainted and self.reference.exists(collection, name)

    # Each handler returns (status, detail, report, metrics_before) and may
    # raise typed storage errors (handled by _apply).

    def _op_ingest(self, index: int, p: Dict):
        collection, name = str(p["collection"]), str(p["object"])
        side, tile = int(p["side"]), int(p["tile"])
        if self.reference.exists(collection, name) or name in self._tainted:
            return "skipped", "object already exists", None, None
        if collection not in self._collections:
            self.heaven.create_collection(collection)
            self._collections.add(collection)
        domain = MInterval.of((0, side - 1), (0, side - 1))
        mdd = MDD(
            name,
            domain,
            DOUBLE,
            tiling=RegularTiling((tile, tile)),
            source=HashedNoiseSource(int(p["source_seed"])),
        )
        self.heaven.insert(collection, mdd)
        self.reference.ingest(collection, name, side, int(p["source_seed"]))
        return "ok", f"{side}x{side} double", None, None

    def _op_archive(self, index: int, p: Dict):
        collection, name = str(p["collection"]), str(p["object"])
        if not self._usable(collection, name):
            return "skipped", "object not available", None, None
        if self.heaven.is_archived(name):
            return "skipped", "already archived", None, None
        report = self.heaven.archive(
            collection, name, keep_disk_copy=bool(p.get("keep_disk_copy"))
        )
        return "ok", f"{report.segments_written} segments", None, None

    def _op_read(self, index: int, p: Dict):
        collection, name = str(p["collection"]), str(p["object"])
        if not self._usable(collection, name):
            return "skipped", "object not available", None, None
        region = MInterval.parse(str(p["region"]))
        expected = self.reference.read(collection, name, region)
        before = metrics_snapshot(self.heaven.obs.metrics)
        cells, report = self.heaven.read_with_report(collection, name, region)
        cells = self._maybe_flip(cells)
        problem = oracle_mismatch(expected, cells, what=f"read {region}")
        if problem:
            self._violate(index, Op("read", p), "oracle", problem)
        return "ok", str(region), report, before

    def _op_frame_read(self, index: int, p: Dict):
        collection, name = str(p["collection"]), str(p["object"])
        if not self._usable(collection, name):
            return "skipped", "object not available", None, None
        boxes = [MInterval.parse(str(b)) for b in p["boxes"]]
        fill = float(p["fill"])
        expected = self.reference.read_frame(collection, name, boxes, fill)
        if expected is None:
            return "skipped", "frame outside domain", None, None
        marray, mask = self.heaven.read_frame(
            collection, name, MultiBoxFrame(boxes), fill=fill
        )
        cells = self._maybe_flip(marray.cells)
        problem = oracle_mismatch(expected[0], cells, what="frame cells")
        if problem:
            self._violate(index, Op("frame_read", p), "oracle", problem)
        problem = oracle_mismatch(expected[1], mask, what="frame mask")
        if problem:
            self._violate(index, Op("frame_read", p), "oracle", problem)
        return "ok", f"{len(boxes)} box(es)", None, None

    def _op_read_many(self, index: int, p: Dict):
        requests = [
            (str(c), str(o), MInterval.parse(str(r))) for c, o, r in p["requests"]
        ]
        if not all(self._usable(c, o) for c, o, _r in requests):
            return "skipped", "some objects not available", None, None
        expected = [
            self.reference.read(c, o, region) for c, o, region in requests
        ]
        before = metrics_snapshot(self.heaven.obs.metrics)
        outputs, report = self.heaven.read_many(requests)
        for position, (want, got) in enumerate(zip(expected, outputs)):
            got = self._maybe_flip(got) if position == 0 else got
            problem = oracle_mismatch(
                want, got, what=f"read_many[{position}]"
            )
            if problem:
                self._violate(index, Op("read_many", p), "oracle", problem)
        return "ok", f"batch of {len(requests)}", report, before

    def _op_concurrent(self, index: int, p: Dict):
        """2-8 overlapping queries through the admission layer.

        Every query's cells are checked against the oracle (byte identity
        is interleaving-independent), and the per-query tape-byte split of
        fused sweeps must reconcile exactly with the event-log window.
        """
        from ..core.admission import AdmissionController, QuerySpec

        queries = [
            (str(c), str(o), MInterval.parse(str(r)), float(a), float(w))
            for c, o, r, a, w in p["queries"]
        ]
        if not all(self._usable(c, o) for c, o, _r, _a, _w in queries):
            return "skipped", "some objects not available", None, None
        expected = [
            self.reference.read(c, o, region)
            for c, o, region, _a, _w in queries
        ]
        now = self.heaven.clock.now
        specs = [
            QuerySpec(
                collection=c,
                object_name=o,
                region=region,
                arrival_s=now + arrival,
                weight=weight,
                name=f"{o}#{position}",
            )
            for position, (c, o, region, arrival, weight) in enumerate(queries)
        ]
        aging = float(p.get("aging_bound_s", 0.0)) or None
        controller = AdmissionController(
            self.heaven,
            holdback_s=float(p.get("holdback_s", 0.0)),
            aging_bound_s=aging,
            schedule_seed=int(p.get("schedule_seed", 0)),
        )
        outputs, report = controller.run(specs)
        for position, (want, got) in enumerate(zip(expected, outputs)):
            got = self._maybe_flip(got) if position == 0 else got
            problem = oracle_mismatch(
                want, got, what=f"concurrent[{position}]"
            )
            if problem:
                self._violate(index, Op("concurrent", p), "oracle", problem)
        problem = reconcile_shared_tape_bytes(
            report.queries,
            self.heaven.clock.log,
            report.log_cursor_start,
            unattributed=report.unattributed_tape_bytes,
        )
        if problem:
            self._violate(index, Op("concurrent", p), "reconcile", problem)
        return "ok", f"{len(specs)} queries, {report.sweeps} sweep(s)", None, None

    def _op_service(self, index: int, p: Dict):
        """Concurrent multi-tenant reads through the SN/DN service tier.

        The data nodes share this run's HEAVEN instance (oracle mode), so
        every service answer must be byte-identical to the reference
        model, and the tenant registry's byte charges must reconcile
        exactly with the per-result reports (no cross-tenant leakage).
        """
        from ..errors import ServiceError
        from ..service import ServiceCluster

        queries = [
            (str(c), str(o), MInterval.parse(str(r)))
            for c, o, r in p["queries"]
        ]
        if not all(self._usable(c, o) for c, o, _r in queries):
            return "skipped", "some objects not available", None, None
        expected = [
            self.reference.read(c, o, region) for c, o, region in queries
        ]
        nodes = max(1, int(p.get("nodes", 2)))
        tenants = max(1, int(p.get("tenants", 1)))
        objects = sorted({(c, o) for c, o, _r in queries})
        try:
            cluster = ServiceCluster.over(
                self.heaven, nodes=nodes, objects=objects
            )
        except (ServiceError, HeavenError) as exc:
            return "failed-op", f"{type(exc).__name__}: {exc}", None, None
        for tenant in range(tenants):
            cluster.register_tenant(f"t{tenant}")
        plan = [
            (f"token-t{position % tenants}", c, o, str(region), 0.0)
            for position, (c, o, region) in enumerate(queries)
        ]
        try:
            results = cluster.read_many(plan)
        except ServiceError as exc:
            # A data node exhausted its retry budget (fault injection) and
            # the service node propagated the typed error — expected.
            return "failed-op", f"{type(exc).__name__}: {exc}", None, None
        for position, (want, result) in enumerate(zip(expected, results)):
            got = self._maybe_flip(result.cells) if position == 0 else result.cells
            problem = oracle_mismatch(want, got, what=f"service[{position}]")
            if problem:
                self._violate(index, Op("service", p), "oracle", problem)
        # Byte-attribution reconciliation: what each tenant was charged
        # must equal the useful bytes of exactly its own results.
        charged_per_tenant: Dict[str, int] = {}
        for (token, _c, _o, _r, _a), result in zip(plan, results):
            name = token.removeprefix("token-")
            charged_per_tenant[name] = (
                charged_per_tenant.get(name, 0) + result.bytes_useful
            )
        for name, want_bytes in sorted(charged_per_tenant.items()):
            usage = cluster.tenants.usage(name)
            if usage.bytes_charged != want_bytes:
                self._violate(
                    index,
                    Op("service", p),
                    "reconcile",
                    f"tenant {name}: registry charged "
                    f"{usage.bytes_charged} B, results total {want_bytes} B",
                )
        return "ok", f"{len(queries)} queries over {nodes} node(s)", None, None

    def _op_update(self, index: int, p: Dict):
        collection, name = str(p["collection"]), str(p["object"])
        if not self._usable(collection, name):
            return "skipped", "object not available", None, None
        region = MInterval.parse(str(p["region"]))
        cells = HashedNoiseSource(int(p["value_seed"])).region(region, DOUBLE)
        self.heaven.update(collection, name, region, cells)
        # Mirror into the oracle only after the stack committed; a failed
        # update taints the object instead (see _taint_if_mutating).
        self.reference.write(collection, name, region, cells)
        return "ok", str(region), None, None

    def _op_reimport(self, index: int, p: Dict):
        collection, name = str(p["collection"]), str(p["object"])
        if not self._usable(collection, name):
            return "skipped", "object not available", None, None
        if not self.heaven.is_archived(name):
            return "skipped", "not archived", None, None
        tiles = self.heaven.reimport(collection, name)
        return "ok", f"{tiles} tiles", None, None

    def _op_delete(self, index: int, p: Dict):
        collection, name = str(p["collection"]), str(p["object"])
        if not self.reference.exists(collection, name):
            return "skipped", "object not available", None, None
        self.heaven.delete(collection, name)
        self.reference.delete(collection, name)
        self._tainted.discard(name)
        return "ok", "", None, None

    def _op_cache_resize(self, index: int, p: Dict):
        new_bytes = int(p["disk_cache_kb"]) * KB
        evicted = self.heaven.disk_cache.resize(new_bytes)
        return "ok", f"{new_bytes} B ({evicted} evicted)", None, None

    def _op_fault(self, index: int, p: Dict):
        self.plan.fail_next(str(p["site"]), count=int(p.get("count", 1)))
        return "ok", f"fail_next {p['site']}", None, None

    def _op_offline(self, index: int, p: Dict):
        self.plan.set_offline(bool(p["offline"]))
        return "ok", f"offline={bool(p['offline'])}", None, None

    # -- mutation ------------------------------------------------------------

    def _maybe_flip(self, cells: np.ndarray) -> np.ndarray:
        """``oracle-flip`` seeded bug: corrupt one byte of a returned array."""
        if self.mutate != "oracle-flip" or cells.size == 0:
            return cells
        corrupted = np.array(cells, copy=True)
        view = corrupted.view(np.uint8)
        view.flat[0] ^= 0xFF
        return corrupted


def run_program(
    program: WorkloadProgram, mutate: Optional[str] = None
) -> SimResult:
    """Build a fresh runner and execute *program* start to finish."""
    return SimRunner(program, mutate=mutate).run()


def replay_json(text: str, mutate: Optional[str] = None) -> SimResult:
    """Run a JSON-serialised program (the repro-script entry point)."""
    return run_program(WorkloadProgram.from_json(text), mutate=mutate)
