"""Trivial in-memory reference model (the differential oracle).

The reference holds every simulated object as one plain numpy array and
answers reads by slicing — no tiles, no caches, no tape, no clock.  It is
deliberately too simple to share bugs with the HEAVEN stack: if the two
disagree on a single byte, the hierarchy (staging, pinning, eviction,
parallel execution, fault recovery, export/reimport) corrupted data.

Cell generation reuses the same deterministic
:class:`~repro.arrays.cellsource.HashedNoiseSource` the runner feeds into
the real MDD, materialised eagerly over the full domain.  The source is a
pure function of (seed, absolute coordinates), so "generate everything up
front" and "generate lazily per tile through five storage layers" must
agree exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..arrays import DOUBLE, HashedNoiseSource, MInterval


class ReferenceModel:
    """Oracle state: ``(collection, object) -> full cell array``."""

    def __init__(self) -> None:
        self._objects: Dict[Tuple[str, str], np.ndarray] = {}
        self._domains: Dict[Tuple[str, str], MInterval] = {}

    # -- lifecycle -----------------------------------------------------------

    def exists(self, collection: str, name: str) -> bool:
        return (collection, name) in self._objects

    def ingest(self, collection: str, name: str, side: int, source_seed: int) -> None:
        domain = MInterval.of((0, side - 1), (0, side - 1))
        source = HashedNoiseSource(source_seed)
        self._objects[(collection, name)] = source.region(domain, DOUBLE)
        self._domains[(collection, name)] = domain

    def delete(self, collection: str, name: str) -> None:
        self._objects.pop((collection, name), None)
        self._domains.pop((collection, name), None)

    def domain(self, collection: str, name: str) -> MInterval:
        return self._domains[(collection, name)]

    # -- reads/writes --------------------------------------------------------

    def read(self, collection: str, name: str, region: MInterval) -> np.ndarray:
        full = self._objects[(collection, name)]
        domain = self._domains[(collection, name)]
        return full[region.to_slices(domain)].copy()

    def write(self, collection: str, name: str, region: MInterval, cells: np.ndarray) -> None:
        full = self._objects[(collection, name)]
        domain = self._domains[(collection, name)]
        full[region.to_slices(domain)] = cells

    def read_frame(
        self,
        collection: str,
        name: str,
        boxes: List[MInterval],
        fill: float,
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Replicates :func:`repro.core.framing.read_frame` semantics.

        Returns ``(hull_cells, membership_mask)``, or ``None`` when the
        frame lies entirely outside the object domain (the real call
        raises ``FramingError`` then; the runner skips such ops).
        """
        domain = self._domains[(collection, name)]
        hull_box = boxes[0]
        for box in boxes[1:]:
            hull_box = hull_box.hull(box)
        hull = hull_box.intersection(domain)
        if hull is None:
            return None
        full = self._objects[(collection, name)]
        mask = np.zeros(hull.shape, dtype=bool)
        for box in boxes:
            overlap = box.intersection(hull)
            if overlap is not None:
                mask[overlap.to_slices(hull)] = True
        data = full[hull.to_slices(domain)]
        cells = np.where(mask, data, np.asarray(fill, dtype=data.dtype))
        return cells, mask
