"""Whole-system invariants checked after every simulated operation.

Each helper returns ``None`` when the invariant holds, or a short
human-readable description of the violation.  The
:class:`~repro.simtest.runner.SimRunner` turns descriptions into
:class:`~repro.simtest.runner.Violation` records; nothing here raises, so
a single broken invariant never hides the ones checked after it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import HeavenError


def oracle_mismatch(
    expected: np.ndarray, actual: np.ndarray, what: str = "read"
) -> Optional[str]:
    """Byte-identity of a returned array against the reference model."""
    if actual.shape != expected.shape:
        return (
            f"{what}: shape diverged — stack returned {actual.shape}, "
            f"oracle expects {expected.shape}"
        )
    if actual.dtype != expected.dtype:
        return (
            f"{what}: dtype diverged — stack returned {actual.dtype}, "
            f"oracle expects {expected.dtype}"
        )
    if actual.tobytes() == expected.tobytes():
        return None
    diff = np.argwhere(
        np.asarray(actual) != np.asarray(expected)
    )
    first = tuple(int(c) for c in diff[0]) if len(diff) else ()
    return (
        f"{what}: cell values diverged at {len(diff)} position(s); first at "
        f"index {first}: stack={np.asarray(actual)[first]!r} "
        f"oracle={np.asarray(expected)[first]!r}"
    )


def check_quiescent(heaven) -> Optional[str]:
    """Pin refcounts zero, no active timeline, caches within capacity."""
    try:
        heaven.assert_quiescent()
    except HeavenError as exc:
        return str(exc)
    return None


def check_clock_monotonic(
    events: Sequence,
    last_start: Dict[str, float],
    device_prefix: str = "drive",
) -> List[str]:
    """Per-device event start times must never move backwards.

    *last_start* is the caller's persistent ``device -> latest start``
    state; it is updated in place so monotonicity is enforced across the
    whole run, not just within one operation's event window.  Only
    devices matching *device_prefix* are tracked: the shared robot arm
    serves interleaved per-drive timelines, so its global append order is
    legitimately non-monotonic in start time.
    """
    problems: List[str] = []
    for event in events:
        if not event.device.startswith(device_prefix):
            continue
        previous = last_start.get(event.device)
        if previous is not None and event.time < previous - 1e-9:
            problems.append(
                f"clock on {event.device} moved backwards: {event.kind} "
                f"event at t={event.time:.6f} after one at t={previous:.6f}"
            )
        last_start[event.device] = max(
            event.time, previous if previous is not None else event.time
        )
    return problems


def check_global_clock(now_before: float, now_after: float) -> Optional[str]:
    """The global virtual clock is monotone across an operation."""
    if now_after < now_before - 1e-9:
        return (
            f"global clock moved backwards across the op: "
            f"{now_before:.6f} -> {now_after:.6f}"
        )
    return None


def check_no_restage_growth(before: int, after: int) -> Optional[str]:
    """Batch staging must not thrash: zero restage fallbacks per op.

    The workload generator keeps the memory tile cache large relative to
    the object set, so a drained wave's tiles always survive until
    assembly — any restage therefore means the pinned-wave admission
    machinery dropped bytes it promised to hold.
    """
    if after > before:
        return (
            f"repro_restages_total grew by {after - before} within one "
            f"operation (staged segments evicted before their tiles were read)"
        )
    return None
