"""Consistent hashing of super-tile shard keys onto data nodes.

The service tier partitions the super-tile space with a classic
virtual-node consistent-hash ring: each data node claims ``replicas``
pseudo-random points on a 160-bit circle, and a shard key is owned by the
first node point at or after the key's own hash.  Two properties matter
and are locked down by the property suite:

* **total, deterministic routing** — every key maps to exactly one node,
  identically on every service node (the ring is pure data, no state);
* **minimal disruption** — adding a node only moves keys *to* the new
  node, removing one only moves *its* keys; everything else stays put
  (expected movement ≈ K/N of the keyspace).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

from ..errors import ServiceError

__all__ = ["HashRing"]


def _hash(key: str) -> int:
    return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest(), "big")


class HashRing:
    """Virtual-node consistent-hash ring mapping shard keys to node ids."""

    def __init__(self, nodes: Sequence[str] = (), replicas: int = 64) -> None:
        if replicas < 1:
            raise ServiceError("replicas must be >= 1")
        self.replicas = replicas
        self._points: List[Tuple[int, str]] = []
        self._nodes: Dict[str, List[int]] = {}
        for node in nodes:
            self.add_node(node)

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ServiceError(f"node {node!r} already on the ring")
        points = [
            _hash(f"{node}#{replica}") for replica in range(self.replicas)
        ]
        self._nodes[node] = points
        for point in points:
            bisect.insort(self._points, (point, node))

    def remove_node(self, node: str) -> None:
        try:
            points = self._nodes.pop(node)
        except KeyError:
            raise ServiceError(f"node {node!r} not on the ring") from None
        drop = set(points)
        self._points = [
            (point, owner)
            for point, owner in self._points
            if owner != node or point not in drop
        ]

    def node_for(self, key: str) -> str:
        """The node owning *key* (first ring point at or after its hash)."""
        if not self._points:
            raise ServiceError("hash ring has no nodes")
        index = bisect.bisect_left(self._points, (_hash(key), ""))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def assignment(self, keys: Sequence[str]) -> Dict[str, str]:
        """Route every key; convenience for tests and rebalancing audits."""
        return {key: self.node_for(key) for key in keys}
