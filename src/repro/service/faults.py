"""Seeded transport-fault injection for the SN/DN service tier.

:mod:`repro.faults` injects *hardware* faults inside a data node's own
HEAVEN instance (mount failures, media errors, ...).  This plan models
the layer above it — the transport between service node and data node:

===========  =====================================================
site         effect at the data node's ``call`` entry
===========  =====================================================
``stall``    the response is delayed ``stall_s`` wall seconds
             (the SN's ``asyncio.wait_for`` guard decides whether
             that is survivable)
``drop``     the request vanishes — the awaiting future never
             resolves, the SN times out and retries
``error``    the node answers with a typed error response
             (as if its storage layer failed)
===========  =====================================================

Randomised draws come from one ``random.Random(seed)`` stream, and
:meth:`fail_next` schedules one-shot faults exactly like
:meth:`repro.faults.FaultPlan.fail_next` — same seed, same workload,
same fault sequence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ServiceError

__all__ = ["ServiceFaultSpec", "ServiceFaultPlan", "SERVICE_FAULT_SITES"]

#: transport-level fault sites (see module docstring)
SERVICE_FAULT_SITES: Tuple[str, ...] = ("stall", "drop", "error")


@dataclass(frozen=True)
class ServiceFaultSpec:
    """Random transport-fault rates of one plan (per DN call)."""

    stall_rate: float = 0.0
    drop_rate: float = 0.0
    error_rate: float = 0.0
    #: wall seconds a stalled call is delayed before being served
    stall_s: float = 0.05

    def __post_init__(self) -> None:
        for name in ("stall_rate", "drop_rate", "error_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.stall_s < 0:
            raise ValueError("stall_s must be >= 0")


@dataclass
class ServiceFaultStats:
    """Injected transport faults, per site."""

    injected: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.injected.values())

    def count(self, site: str) -> int:
        return self.injected.get(site, 0)


class ServiceFaultPlan:
    """Seeded source of transport faults, shared by a cluster's data nodes."""

    def __init__(
        self, seed: int = 0, spec: Optional[ServiceFaultSpec] = None
    ) -> None:
        self.seed = seed
        self.spec = spec if spec is not None else ServiceFaultSpec()
        self.stats = ServiceFaultStats()
        self._rng = random.Random(seed)
        #: site -> queue of node filters (None matches any node)
        self._scheduled: Dict[str, List[Optional[str]]] = {}

    def reset(self) -> None:
        self._rng = random.Random(self.seed)
        self._scheduled.clear()
        self.stats = ServiceFaultStats()

    def fail_next(
        self, site: str, node: Optional[str] = None, count: int = 1
    ) -> None:
        """Schedule the next *count* calls (optionally at *node*) to fault."""
        if site not in SERVICE_FAULT_SITES:
            raise ServiceError(
                f"unknown service fault site {site!r}; "
                f"known: {SERVICE_FAULT_SITES}"
            )
        if count < 1:
            raise ServiceError("count must be >= 1")
        self._scheduled.setdefault(site, []).extend([node] * count)

    def scheduled(self, site: str) -> int:
        return len(self._scheduled.get(site, []))

    def draw(self, node_id: str) -> Optional[str]:
        """Fault site to inject for this call at *node_id*, or ``None``.

        One-shot scheduled faults fire first (in site order), then each
        site's random rate is rolled independently; at most one site
        fires per call.
        """
        for site, rate in (
            ("stall", self.spec.stall_rate),
            ("drop", self.spec.drop_rate),
            ("error", self.spec.error_rate),
        ):
            queue = self._scheduled.get(site)
            if queue and (queue[0] is None or queue[0] == node_id):
                queue.pop(0)
                self._note(site)
                return site
            if rate > 0.0 and self._rng.random() < rate:
                self._note(site)
                return site
        return None

    def _note(self, site: str) -> None:
        self.stats.injected[site] = self.stats.injected.get(site, 0) + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceFaultPlan(seed={self.seed}, "
            f"injected={self.stats.total})"
        )
