"""Async multi-tenant SN/DN service tier over sharded HEAVEN data nodes.

Service nodes (:class:`~repro.service.sn.ServiceNode`) parse and
authenticate tenant reads, split them by a consistent-hash ring into
per-shard sub-read units, and reassemble the shard responses with the
repo's zero-copy scatter path.  Data nodes
(:class:`~repro.service.node.DataNode`) each own a shard of the
super-tile space backed by their own :class:`~repro.core.heaven.Heaven`
instance and serve drained request batches fused through the admission
layer.  :class:`~repro.service.cluster.ServiceCluster` wires N of them
together in-process.  See ``docs/SERVICE.md``.
"""

from ..core.units import (
    ObjectDescriptor,
    SubReadRequest,
    SubReadResponse,
    SubReadStats,
    TilePayload,
    WireError,
    decode_frames,
    encode_frames,
)
from .assemble import ExplicitTiling, ShadowObject
from .auth import Tenant, TenantRegistry, TenantUsage
from .cluster import ServiceCluster
from .faults import SERVICE_FAULT_SITES, ServiceFaultPlan, ServiceFaultSpec
from .hashring import HashRing
from .node import DataNode
from .sn import ServiceNode, ServiceReadResult

__all__ = [
    "SERVICE_FAULT_SITES",
    "DataNode",
    "ExplicitTiling",
    "HashRing",
    "ObjectDescriptor",
    "ServiceCluster",
    "ServiceFaultPlan",
    "ServiceFaultSpec",
    "ServiceNode",
    "ServiceReadResult",
    "ShadowObject",
    "SubReadRequest",
    "SubReadResponse",
    "SubReadStats",
    "Tenant",
    "TenantRegistry",
    "TenantUsage",
    "TilePayload",
    "WireError",
    "decode_frames",
    "encode_frames",
]
