"""Service-node reassembly of shard responses into one region array.

A service node holds no cells — only :class:`~repro.core.units
.ObjectDescriptor` catalog entries.  For each object it builds a
*shadow MDD*: same domain, same cell type, and — via
:class:`ExplicitTiling` — the exact tile geometry of the data nodes'
object, so tile ids line up with the descriptor's ``tile_domains``
order.  Reassembly installs a resolver that serves each tile from the
received :class:`~repro.core.units.TilePayload` byte views and runs the
ordinary ``MDD.read``: the existing vectorized zero-copy scatter
(pointer-adjacent run merging included) does the rest, so the service
tier adds no second assembly code path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..arrays.celltype import CellType
from ..arrays.mdd import MDD
from ..arrays.minterval import MInterval
from ..arrays.tile import Tile
from ..arrays.tiling import TilingScheme
from ..core.units import ObjectDescriptor, TilePayload, _dtype_for
from ..errors import ShardUnavailableError

__all__ = ["ExplicitTiling", "ShadowObject"]


class ExplicitTiling(TilingScheme):
    """A fixed, pre-computed tile-domain list (descriptor-driven tiling).

    Tile ids are positional, so feeding a descriptor's ``tile_domains``
    (which are listed in tile-id order) reproduces the data nodes' ids
    exactly — the invariant shard routing depends on.
    """

    def __init__(self, domains: List[MInterval]) -> None:
        self._domains = list(domains)

    def tile_domains(
        self, domain: MInterval, cell_type: CellType
    ) -> List[MInterval]:
        return list(self._domains)

    def describe(self) -> str:
        return f"explicit({len(self._domains)} tiles)"


class ShadowObject:
    """Cell-less stand-in for one remote object on a service node."""

    def __init__(self, descriptor: ObjectDescriptor) -> None:
        self.descriptor = descriptor
        dtype = _dtype_for(descriptor.dtype)
        cell_type = CellType(name=descriptor.dtype, dtype=dtype)
        self.mdd = MDD(
            descriptor.name,
            MInterval.parse(descriptor.domain),
            cell_type,
            tiling=ExplicitTiling(
                [MInterval.parse(d) for d in descriptor.tile_domains]
            ),
        )
        # No local cells, ever: tiles resolve only during an assemble()
        # call with that read's payloads installed.
        self.mdd.source = None

    @property
    def domain(self) -> MInterval:
        return self.mdd.domain

    def tiles_for(self, region: MInterval) -> List[Tile]:
        return self.mdd.tiles_for(region)

    def estimated_read_bytes(self, region: MInterval) -> int:
        """Quota pre-charge estimate: the clipped region's cell volume."""
        clipped = self.mdd.domain.intersection(region)
        if clipped is None:
            return 0
        return clipped.cell_count * self.mdd.cell_type.size_bytes

    def assemble(
        self,
        region: MInterval,
        payloads: Dict[int, TilePayload],
        *,
        missing_fill: Optional[float] = None,
    ) -> np.ndarray:
        """Scatter the received tile payloads into one region array.

        Args:
            payloads: tile id -> received payload (byte views decode to
                read-only cell arrays, zero-copy).
            missing_fill: with ``None`` (default) a tile no shard
                delivered raises :class:`ShardUnavailableError`; a float
                fills such tiles instead — the degraded partial-result
                mode.
        """

        def resolve(_mdd: MDD, tile: Tile) -> np.ndarray:
            payload = payloads.get(tile.tile_id)
            if payload is None:
                if missing_fill is None:
                    raise ShardUnavailableError(
                        f"no shard delivered tile {tile.tile_id} of "
                        f"{self.descriptor.name!r}"
                    )
                return np.full(
                    tile.domain.shape,
                    missing_fill,
                    dtype=self.mdd.cell_type.dtype,
                )
            return payload.cells()

        self.mdd.resolver = resolve
        try:
            return self.mdd.read(region)
        finally:
            self.mdd.resolver = None
