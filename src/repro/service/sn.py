"""Service node: the multi-tenant front-end of the SN/DN split.

A :class:`ServiceNode` holds no cells — a catalog of
:class:`~repro.core.units.ObjectDescriptor` entries, a
:class:`~repro.service.hashring.HashRing`, the tenant registry and
handles to the data nodes.  One read runs the full service pipeline:

1. **authenticate** the bearer token (401 on unknown/disabled tenants);
2. **pre-charge** the tenant's quota with the region's estimated byte
   volume (429-style :class:`~repro.errors.QuotaExceededError` — a
   rejected query never reaches a data node);
3. **split** the region's tile cover by the hash ring into one
   :class:`~repro.core.units.SubReadRequest` per owning data node;
4. **dispatch** concurrently with a per-shard ``asyncio.wait_for``
   timeout guard and bounded retry; a shard that stays dark past the
   retry budget either fails the query typed
   (:class:`~repro.errors.ShardUnavailableError`) or — with
   ``partial_results`` — degrades it (missing tiles zero-filled,
   flagged);
5. **reassemble** the shard payloads through the shadow object's
   zero-copy scatter and settle the quota to the bytes actually served.

Per-tenant served bytes, requests, rejections and retries are reported
through ``repro.obs`` metrics; the fault suite reconciles those series
against per-query reports to prove byte attribution never leaks across
tenants.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.units import ObjectDescriptor, SubReadRequest, SubReadResponse, TilePayload
from ..errors import (
    DataNodeError,
    HeavenError,
    ServiceError,
    ShardUnavailableError,
)
from ..arrays.minterval import MInterval
from ..obs.metrics import MetricsRegistry
from .assemble import ShadowObject
from .auth import TenantRegistry
from .hashring import HashRing
from .node import DataNode

__all__ = ["ServiceNode", "ServiceReadResult"]


@dataclass
class ServiceReadResult:
    """One answered service read plus its cost/provenance report."""

    request_id: str
    tenant: str
    cells: np.ndarray
    #: data nodes that contributed tiles, in dispatch order
    shards: List[str] = field(default_factory=list)
    bytes_useful: int = 0
    bytes_from_tape: int = 0
    #: query completion on the cluster's virtual timeline
    completion_v: float = 0.0
    #: virtual sojourn: completion minus the query's arrival
    latency_v: float = 0.0
    #: per-shard retries this query needed
    retries: int = 0
    #: partial result: at least one shard stayed dark and its tiles
    #: were fill-substituted (only with ``partial_results``)
    degraded: bool = False
    #: tile ids no shard delivered (empty unless degraded)
    missing_tiles: List[int] = field(default_factory=list)


class ServiceNode:
    """Parse, authenticate, shard, dispatch, reassemble."""

    def __init__(
        self,
        name: str,
        *,
        catalog: Dict[Tuple[str, str], ObjectDescriptor],
        ring: HashRing,
        nodes: Dict[str, DataNode],
        tenants: TenantRegistry,
        metrics: Optional[MetricsRegistry] = None,
        timeout_s: float = 30.0,
        retries: int = 1,
        partial_results: bool = False,
        degraded_fill: float = 0.0,
    ) -> None:
        self.name = name
        self.catalog = catalog
        self.ring = ring
        self.nodes = nodes
        self.tenants = tenants
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.timeout_s = timeout_s
        self.retries = retries
        self.partial_results = partial_results
        self.degraded_fill = degraded_fill
        self._shadows: Dict[Tuple[str, str], ShadowObject] = {}
        self._next_request = 0
        self._requests_total = self.metrics.counter(
            "repro_service_requests_total",
            "service reads accepted per tenant",
        )
        self._rejected_total = self.metrics.counter(
            "repro_service_rejected_total",
            "service reads rejected per tenant and reason (401/429)",
        )
        self._tenant_bytes_total = self.metrics.counter(
            "repro_service_tenant_bytes_total",
            "useful bytes served per tenant (exact attribution)",
            unit="bytes",
        )
        self._tape_bytes_total = self.metrics.counter(
            "repro_service_tape_bytes_total",
            "attributed tape bytes per tenant",
            unit="bytes",
        )
        self._retries_total = self.metrics.counter(
            "repro_service_shard_retries_total",
            "per-shard dispatch retries",
        )
        self._degraded_total = self.metrics.counter(
            "repro_service_degraded_total",
            "queries answered as degraded partial results",
        )
        self._latency_v = self.metrics.histogram(
            "repro_service_latency_virtual_seconds",
            "virtual sojourn of answered service reads",
        )

    # ------------------------------------------------------------------ catalog

    def shadow(self, collection: str, object_name: str) -> ShadowObject:
        key = (collection, object_name)
        if key not in self._shadows:
            try:
                descriptor = self.catalog[key]
            except KeyError:
                raise HeavenError(
                    f"object {collection}/{object_name} not in the "
                    "service catalog"
                ) from None
            self._shadows[key] = ShadowObject(descriptor)
        return self._shadows[key]

    # ------------------------------------------------------------------ serving

    async def read(
        self,
        token: str,
        collection: str,
        object_name: str,
        region: str,
        *,
        arrival_v: float = 0.0,
    ) -> ServiceReadResult:
        """Serve one tenant read through the full SN/DN pipeline."""
        try:
            tenant = self.tenants.authenticate(token)
        except ServiceError:
            self._rejected_total.inc(reason="401")
            raise
        shadow = self.shadow(collection, object_name)
        parsed = MInterval.parse(region)
        estimated = shadow.estimated_read_bytes(parsed)
        try:
            self.tenants.charge(tenant.name, estimated)
        except ServiceError:
            self._rejected_total.inc(tenant=tenant.name, reason="429")
            raise
        self._requests_total.inc(tenant=tenant.name)
        self._next_request += 1
        request_id = f"{self.name}-{self._next_request}"
        descriptor = shadow.descriptor
        by_node: Dict[str, List[int]] = {}
        for tile in shadow.tiles_for(parsed):
            owner = self.ring.node_for(descriptor.shard_key(tile.tile_id))
            by_node.setdefault(owner, []).append(tile.tile_id)
        sub_requests = [
            (
                node_id,
                SubReadRequest(
                    request_id=f"{request_id}/{node_id}",
                    tenant=tenant.name,
                    collection=collection,
                    object_name=object_name,
                    region=region,
                    tile_ids=tuple(tile_ids),
                    arrival_v=arrival_v,
                ),
            )
            for node_id, tile_ids in sorted(by_node.items())
        ]
        result = ServiceReadResult(
            request_id=request_id,
            tenant=tenant.name,
            cells=np.empty(0),
        )
        try:
            gathered = await asyncio.gather(
                *(
                    self._dispatch(node_id, request, result)
                    for node_id, request in sub_requests
                )
            )
        except ServiceError:
            # The query dies typed; its pre-charge settles to zero so a
            # failed read does not burn the tenant's byte budget.
            self.tenants.settle(tenant.name, estimated, 0)
            raise
        payloads: Dict[int, TilePayload] = {}
        requested: set = set()
        for (_node_id, request), response in zip(sub_requests, gathered):
            requested.update(request.tile_ids or ())
            if response is None:
                continue
            result.shards.append(response.node_id)
            result.bytes_from_tape += response.stats.bytes_from_tape
            result.completion_v = max(
                result.completion_v, response.completion_v
            )
            for tile in response.tiles:
                payloads[tile.tile_id] = tile
        result.missing_tiles = sorted(requested - set(payloads))
        if result.missing_tiles:
            result.degraded = True
            self._degraded_total.inc(tenant=tenant.name)
        result.cells = shadow.assemble(
            parsed,
            payloads,
            missing_fill=self.degraded_fill if result.degraded else None,
        )
        result.bytes_useful = sum(p.nbytes for p in payloads.values())
        result.latency_v = max(0.0, result.completion_v - arrival_v)
        self.tenants.settle(tenant.name, estimated, result.bytes_useful)
        self._tenant_bytes_total.inc(result.bytes_useful, tenant=tenant.name)
        self._tape_bytes_total.inc(
            result.bytes_from_tape, tenant=tenant.name
        )
        self._latency_v.observe(result.latency_v)
        return result

    async def _dispatch(
        self,
        node_id: str,
        request: SubReadRequest,
        result: ServiceReadResult,
    ) -> Optional[SubReadResponse]:
        """One shard's call with timeout guard and bounded retry.

        Returns ``None`` when the shard stayed dark past the retry
        budget and ``partial_results`` allows degrading; raises typed
        otherwise.
        """
        node = self.nodes[node_id]
        last_error: Optional[str] = None
        for attempt in range(self.retries + 1):
            if attempt > 0:
                result.retries += 1
                self._retries_total.inc(node=node.node_id)
            try:
                response = await asyncio.wait_for(
                    node.call(request), timeout=self.timeout_s
                )
            except asyncio.TimeoutError:
                last_error = f"timeout after {self.timeout_s}s"
                continue
            if response.ok:
                return response
            last_error = (
                f"{response.error.type}: {response.error.message}"
                if response.error
                else "unknown data-node error"
            )
        if self.partial_results:
            return None
        if last_error is not None and not last_error.startswith("timeout"):
            raise DataNodeError(
                f"shard {node.node_id} failed serving "
                f"{request.request_id}: {last_error}"
            )
        raise ShardUnavailableError(
            f"shard {node.node_id} unavailable for {request.request_id}: "
            f"{last_error}"
        )
