"""Data node: one shard owner serving sub-read units over asyncio.

A :class:`DataNode` owns a consistent-hash shard of the super-tile space
and a whole :class:`~repro.core.heaven.Heaven` instance (its own clock,
disk cache, drive pool).  Requests arrive through an inbox queue; the
worker task drains the queue in **batches**, so sub-reads from many
concurrent tenants that land while the node is busy are answered in one
fused staging pass:

* ``fusion="admission"`` (default) runs the batch through
  :meth:`~repro.core.admission.AdmissionController.run_units` — per-unit
  leases and EXACT per-unit tape-byte attribution (no cross-tenant
  leakage);
* ``fusion="serial"`` serves units one at a time via
  :meth:`~repro.core.heaven.Heaven.serve_sub_read` (baseline).

With ``wire="frames"`` every response round-trips through the binary
wire format before being handed back — the local dispatch exercises the
exact bytes a remote deployment would ship.

Virtual throughput model: the node keeps a *virtual frontier* — the
cluster-timeline instant it becomes free.  A batch starts at
``max(frontier, latest arrival)``, costs the Heaven clock's advance
while serving, and every member completes when the batch does.  Service
nodes take the max over shards to get a query's completion; q/s and p95
of the scaling benchmark are computed on this timeline (wall-clock
parallelism is irrelevant to the simulation, exactly as everywhere else
in this repo).
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Tuple

from ..core.admission import AdmissionController
from ..core.heaven import Heaven
from ..core.units import SubReadRequest, SubReadResponse, WireError
from ..errors import HeavenError, ServiceError, StorageError
from .faults import ServiceFaultPlan

__all__ = ["DataNode"]


class DataNode:
    """One shard-owning storage node of the service tier."""

    def __init__(
        self,
        node_id: str,
        heaven: Heaven,
        *,
        fusion: str = "admission",
        wire: str = "frames",
        fault_plan: Optional[ServiceFaultPlan] = None,
        controller_kwargs: Optional[Dict[str, object]] = None,
    ) -> None:
        if fusion not in ("admission", "serial"):
            raise ServiceError(f"unknown fusion mode {fusion!r}")
        if wire not in ("frames", "none"):
            raise ServiceError(f"unknown wire mode {wire!r}")
        self.node_id = node_id
        self.heaven = heaven
        self.fusion = fusion
        self.wire = wire
        self.fault_plan = fault_plan
        self.controller_kwargs = dict(controller_kwargs or {})
        # Created per start(): an asyncio.Queue binds to the loop it is
        # first used in, and a cluster may be run() more than once (each
        # run a fresh event loop).
        self.inbox: "Optional[asyncio.Queue[Optional[Tuple[SubReadRequest, asyncio.Future]]]]" = (
            None
        )
        self._worker_task: Optional[asyncio.Task] = None
        #: cluster-timeline instant this node becomes free
        self.v_frontier = 0.0
        #: lifetime counters
        self.requests_served = 0
        self.requests_failed = 0
        self.batches = 0
        self.bytes_served = 0
        self.wire_bytes = 0

    # ------------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        if self._worker_task is not None:
            raise ServiceError(f"node {self.node_id!r} already started")
        self.inbox = asyncio.Queue()
        self._worker_task = asyncio.ensure_future(self._worker())

    async def stop(self) -> None:
        if self._worker_task is None:
            return
        await self.inbox.put(None)
        await self._worker_task
        self._worker_task = None
        self.inbox = None

    # ------------------------------------------------------------------ transport

    async def call(self, request: SubReadRequest) -> SubReadResponse:
        """Dispatch one sub-read to this node and await its response.

        Transport faults (see :class:`ServiceFaultPlan`) are injected
        here — at the boundary a remote deployment would cross: a stall
        delays the call, a drop never resolves (the caller's timeout
        guard must fire), an error answers typed without touching the
        node's storage.
        """
        if self.fault_plan is not None:
            site = self.fault_plan.draw(self.node_id)
            if site == "stall":
                await asyncio.sleep(self.fault_plan.spec.stall_s)
            elif site == "drop":
                await asyncio.get_running_loop().create_future()  # never set
            elif site == "error":
                self.requests_failed += 1
                return SubReadResponse(
                    request_id=request.request_id,
                    object_name=request.object_name,
                    node_id=self.node_id,
                    region=request.region,
                    error=WireError(
                        type="DataNodeError",
                        message=(
                            f"injected transport error at {self.node_id}"
                        ),
                    ),
                )
        if self.inbox is None:
            raise ServiceError(f"node {self.node_id!r} is not started")
        future = asyncio.get_running_loop().create_future()
        await self.inbox.put((request, future))
        return await future

    # ------------------------------------------------------------------ worker

    async def _worker(self) -> None:
        """Drain the inbox forever, serving each drained batch fused."""
        while True:
            item = await self.inbox.get()
            if item is None:
                return
            batch: List[Tuple[SubReadRequest, asyncio.Future]] = [item]
            stop = False
            while not self.inbox.empty():
                extra = self.inbox.get_nowait()
                if extra is None:
                    stop = True
                    break
                batch.append(extra)
            self._serve_batch(batch)
            # Yield once per batch so enqueued callers observe results
            # before the next batch is drained (deterministic turn order).
            await asyncio.sleep(0)
            if stop:
                return

    def _serve_batch(
        self, batch: List[Tuple[SubReadRequest, asyncio.Future]]
    ) -> None:
        requests = [request for request, _future in batch]
        started_v = max(
            [self.v_frontier] + [r.arrival_v for r in requests]
        )
        clock_before = self.heaven.clock.now
        responses = self._serve_requests(requests)
        service_delta = self.heaven.clock.now - clock_before
        completion_v = started_v + service_delta
        self.v_frontier = completion_v
        self.batches += 1
        for (request, future), response in zip(batch, responses):
            response.node_id = self.node_id
            response.completion_v = completion_v
            if response.ok:
                self.requests_served += 1
                self.bytes_served += response.stats.bytes_useful
            else:
                self.requests_failed += 1
            if self.wire == "frames":
                encoded = response.encode()
                self.wire_bytes += len(encoded)
                response = SubReadResponse.decode(encoded)
            if not future.cancelled():
                future.set_result(response)

    def _serve_requests(
        self, requests: List[SubReadRequest]
    ) -> List[SubReadResponse]:
        if self.fusion == "serial":
            return [self._serve_one(request) for request in requests]
        try:
            controller = AdmissionController(
                self.heaven, **self.controller_kwargs
            )
            responses, _report = controller.run_units(requests)
            return responses
        except (StorageError, HeavenError):
            # A poisoned batch (one unit hitting an exhausted retry
            # budget, an offline library) must not take down its
            # neighbours: fall back to serving each unit alone so only
            # the genuinely failing ones answer typed errors.
            return [self._serve_one(request) for request in requests]

    def _serve_one(self, request: SubReadRequest) -> SubReadResponse:
        try:
            if self.fusion == "serial":
                return self.heaven.serve_sub_read(request)
            controller = AdmissionController(
                self.heaven, **self.controller_kwargs
            )
            responses, _report = controller.run_units([request])
            return responses[0]
        except (StorageError, HeavenError) as error:
            return SubReadResponse(
                request_id=request.request_id,
                object_name=request.object_name,
                node_id=self.node_id,
                region=request.region,
                error=WireError(
                    type=type(error).__name__, message=str(error)
                ),
            )
