"""In-process simulated SN/DN cluster: N data nodes behind one service node.

Two construction modes:

* :meth:`ServiceCluster.build` — the *scaling* shape: every data node
  gets its **own fresh** :class:`~repro.core.heaven.Heaven` built by
  ``config_factory()`` and populated by running ``setup(heaven)``
  identically on each.  The hash ring then partitions the super-tile
  space, so each node's cache and drive pool only ever works its shard —
  this is where adding nodes buys virtual-time throughput.
* :meth:`ServiceCluster.over` — the *oracle* shape: all data nodes
  share ONE existing Heaven.  Used by simtest, where reads through the
  service tier must observe exactly the state the oracle tracked.

The cluster is pure asyncio in one process.  Wall-clock parallelism is
irrelevant: throughput and latency are computed on the virtual timeline
(each data node's frontier, see :mod:`.node`).
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.config import HeavenConfig
from ..core.heaven import Heaven
from ..core.units import ObjectDescriptor
from ..errors import ServiceError
from ..obs.metrics import MetricsRegistry
from .auth import Tenant, TenantRegistry
from .faults import ServiceFaultPlan
from .hashring import HashRing
from .node import DataNode
from .sn import ServiceNode, ServiceReadResult

__all__ = ["ServiceCluster"]


class ServiceCluster:
    """N shard-owning data nodes, one hash ring, one service node."""

    def __init__(
        self,
        heavens: Sequence[Heaven],
        *,
        objects: Iterable[Tuple[str, str]],
        fusion: str = "admission",
        wire: str = "frames",
        fault_plan: Optional[ServiceFaultPlan] = None,
        metrics: Optional[MetricsRegistry] = None,
        timeout_s: float = 30.0,
        retries: int = 1,
        partial_results: bool = False,
        replicas: int = 64,
        controller_kwargs: Optional[Dict[str, object]] = None,
    ) -> None:
        if not heavens:
            raise ServiceError("a service cluster needs at least one data node")
        self.heavens = list(heavens)
        self.fault_plan = fault_plan
        self.tenants = TenantRegistry()
        self.ring = HashRing(replicas=replicas)
        self.nodes: Dict[str, DataNode] = {}
        for index, heaven in enumerate(self.heavens):
            node_id = f"dn{index}"
            self.ring.add_node(node_id)
            self.nodes[node_id] = DataNode(
                node_id,
                heaven,
                fusion=fusion,
                wire=wire,
                fault_plan=fault_plan,
                controller_kwargs=controller_kwargs,
            )
        # Every data node holds the same schema (build mode runs the same
        # setup everywhere; over mode shares one instance), so any node
        # can describe the catalog.
        self.catalog: Dict[Tuple[str, str], ObjectDescriptor] = {
            (collection, name): self.heavens[0].describe_object(collection, name)
            for collection, name in objects
        }
        self.sn = ServiceNode(
            "sn0",
            catalog=self.catalog,
            ring=self.ring,
            nodes=self.nodes,
            tenants=self.tenants,
            metrics=metrics,
            timeout_s=timeout_s,
            retries=retries,
            partial_results=partial_results,
        )

    # ------------------------------------------------------------------ builders

    @classmethod
    def build(
        cls,
        config_factory: Callable[[], HeavenConfig],
        setup: Callable[[Heaven], None],
        *,
        nodes: int = 2,
        objects: Iterable[Tuple[str, str]],
        **kwargs: object,
    ) -> "ServiceCluster":
        """Fresh Heaven per data node; ``setup`` populates each identically."""
        if nodes < 1:
            raise ServiceError("nodes must be >= 1")
        heavens = []
        for _ in range(nodes):
            heaven = Heaven(config_factory())
            setup(heaven)
            heavens.append(heaven)
        return cls(heavens, objects=objects, **kwargs)

    @classmethod
    def over(
        cls,
        heaven: Heaven,
        *,
        nodes: int = 2,
        objects: Iterable[Tuple[str, str]],
        **kwargs: object,
    ) -> "ServiceCluster":
        """All data nodes share ONE Heaven (oracle/simtest mode)."""
        if nodes < 1:
            raise ServiceError("nodes must be >= 1")
        return cls([heaven] * nodes, objects=objects, **kwargs)

    # ------------------------------------------------------------------ tenants

    def register_tenant(
        self,
        name: str,
        token: Optional[str] = None,
        *,
        max_requests: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> Tenant:
        return self.tenants.register(
            name, token, max_requests=max_requests, max_bytes=max_bytes
        )

    # ------------------------------------------------------------------ running

    async def start(self) -> None:
        for node in self.nodes.values():
            await node.start()

    async def stop(self) -> None:
        for node in self.nodes.values():
            await node.stop()

    def run(self, body: Callable[[], Awaitable[object]]) -> object:
        """Run ``body`` with all data nodes started, then stop them.

        The one blocking entry point: wraps ``asyncio.run`` so callers
        (CLI, benchmarks, simtest) stay synchronous.
        """

        async def main() -> object:
            await self.start()
            try:
                return await body()
            finally:
                await self.stop()

        return asyncio.run(main())

    def read(
        self,
        token: str,
        collection: str,
        object_name: str,
        region: str,
        *,
        arrival_v: float = 0.0,
    ) -> ServiceReadResult:
        """Blocking single read through the service tier."""
        return self.run(
            lambda: self.sn.read(
                token, collection, object_name, region, arrival_v=arrival_v
            )
        )

    def read_many(
        self,
        requests: Sequence[Tuple[str, str, str, str, float]],
    ) -> List[ServiceReadResult]:
        """Blocking concurrent batch: ``(token, collection, object, region,
        arrival_v)`` tuples are dispatched together (open-loop arrivals)."""

        async def body() -> List[ServiceReadResult]:
            return list(
                await asyncio.gather(
                    *(
                        self.sn.read(
                            token, collection, name, region, arrival_v=arrival
                        )
                        for token, collection, name, region, arrival in requests
                    )
                )
            )

        return self.run(body)  # type: ignore[return-value]
