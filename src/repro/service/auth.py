"""Tenant authentication and byte/request quotas of the service tier.

Every service request presents a bearer token; the registry resolves it
to a :class:`Tenant` and enforces two cumulative quotas — requests and
estimated read bytes — with a 429-style
:class:`~repro.errors.QuotaExceededError` once either is spent.  Charges
are taken *before* dispatch (on the region's estimated byte volume, so a
rejected query costs the cluster nothing) and settled down to the actual
served bytes afterwards; the per-tenant usage counters therefore
reconcile exactly against the ``repro_service_tenant_bytes_total``
metrics, which is how the fault suite proves no cross-tenant byte
attribution leaks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..errors import AuthError, QuotaExceededError, ServiceError

__all__ = ["Tenant", "TenantUsage", "TenantRegistry"]


@dataclass(frozen=True)
class Tenant:
    """One paying (or at least authenticated) user of the cluster."""

    name: str
    token: str
    #: lifetime request budget; ``None`` = unlimited
    max_requests: Optional[int] = None
    #: lifetime byte budget (estimated read volume); ``None`` = unlimited
    max_bytes: Optional[int] = None
    enabled: bool = True


@dataclass
class TenantUsage:
    """Cumulative consumption of one tenant."""

    requests: int = 0
    bytes_charged: int = 0
    #: requests rejected with 429 (quota) — never dispatched
    rejected: int = 0
    #: requests rejected with 401 (bad token) under this tenant's name
    denied: int = 0


class TenantRegistry:
    """Token -> tenant resolution plus cumulative quota accounting."""

    def __init__(self) -> None:
        self._tenants: Dict[str, Tenant] = {}
        self._by_token: Dict[str, str] = {}
        self._usage: Dict[str, TenantUsage] = {}

    def register(
        self,
        name: str,
        token: Optional[str] = None,
        *,
        max_requests: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> Tenant:
        if name in self._tenants:
            raise ServiceError(f"tenant {name!r} already registered")
        tenant = Tenant(
            name=name,
            token=token if token is not None else f"token-{name}",
            max_requests=max_requests,
            max_bytes=max_bytes,
        )
        if tenant.token in self._by_token:
            raise ServiceError(f"token of tenant {name!r} already in use")
        self._tenants[name] = tenant
        self._by_token[tenant.token] = name
        self._usage[name] = TenantUsage()
        return tenant

    def authenticate(self, token: str) -> Tenant:
        """Resolve a bearer token; raises 401-style :class:`AuthError`."""
        name = self._by_token.get(token)
        if name is None:
            raise AuthError(f"unknown tenant token {token!r}")
        tenant = self._tenants[name]
        if not tenant.enabled:
            self._usage[name].denied += 1
            raise AuthError(f"tenant {name!r} is disabled")
        return tenant

    def disable(self, name: str) -> None:
        """Revoke a tenant's access; its token authenticates 401 after."""
        self._tenants[name] = replace(self._tenant(name), enabled=False)

    def enable(self, name: str) -> None:
        self._tenants[name] = replace(self._tenant(name), enabled=True)

    def charge(self, name: str, estimated_bytes: int) -> None:
        """Pre-charge one request; raises 429-style on either quota.

        A rejected request is counted (``rejected``) but consumes neither
        budget — rejection must not burn quota the tenant never used.
        """
        tenant = self._tenant(name)
        usage = self._usage[name]
        if (
            tenant.max_requests is not None
            and usage.requests + 1 > tenant.max_requests
        ):
            usage.rejected += 1
            raise QuotaExceededError(
                f"tenant {name!r} exceeded its request quota "
                f"({tenant.max_requests})"
            )
        if (
            tenant.max_bytes is not None
            and usage.bytes_charged + estimated_bytes > tenant.max_bytes
        ):
            usage.rejected += 1
            raise QuotaExceededError(
                f"tenant {name!r} exceeded its byte quota: "
                f"{usage.bytes_charged} + {estimated_bytes} > "
                f"{tenant.max_bytes}"
            )
        usage.requests += 1
        usage.bytes_charged += estimated_bytes

    def settle(self, name: str, estimated_bytes: int, actual_bytes: int) -> None:
        """Adjust a pre-charge down (or up) to the bytes actually served."""
        usage = self._usage[self._tenant(name).name]
        usage.bytes_charged += actual_bytes - estimated_bytes
        if usage.bytes_charged < 0:  # pragma: no cover - defensive
            usage.bytes_charged = 0

    def refund(self, name: str, estimated_bytes: int) -> None:
        """Roll back a pre-charge whose request failed before serving."""
        usage = self._usage[self._tenant(name).name]
        usage.requests -= 1
        usage.bytes_charged = max(0, usage.bytes_charged - estimated_bytes)

    def usage(self, name: str) -> TenantUsage:
        return self._usage[self._tenant(name).name]

    def names(self) -> list:
        return sorted(self._tenants)

    def _tenant(self, name: str) -> Tenant:
        try:
            return self._tenants[name]
        except KeyError:
            raise ServiceError(f"unknown tenant {name!r}") from None
