"""Secondary-storage (disk) device with clock-charged I/O.

Used for the HSM staging area, the HEAVEN disk cache and the base DBMS BLOB
store.  One :class:`DiskDevice` charges an average positioning latency per
request plus sequential transfer, matching :class:`DiskProfile`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StorageError
from .clock import SimClock
from .profiles import DiskProfile


@dataclass
class DiskStats:
    """Cumulative disk activity."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    time_s: float = 0.0


class DiskDevice:
    """Cost model of one disk (array); tracks used capacity.

    The device does not store payloads — callers keep their own content maps
    (the blob store, caches, and HSM staging area each do) — it only accounts
    for time and space.
    """

    def __init__(self, name: str, profile: DiskProfile, clock: SimClock) -> None:
        self.name = name
        self.profile = profile
        self.clock = clock
        self.used_bytes = 0
        self.stats = DiskStats()

    @property
    def capacity_bytes(self) -> int:
        return self.profile.capacity_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def reserve(self, nbytes: int) -> None:
        """Claim *nbytes* of capacity (no time cost)."""
        if nbytes > self.free_bytes:
            raise StorageError(
                f"disk {self.name}: cannot reserve {nbytes} B, only "
                f"{self.free_bytes} B free"
            )
        self.used_bytes += nbytes

    def release(self, nbytes: int) -> None:
        """Return *nbytes* of capacity."""
        if nbytes > self.used_bytes:
            raise StorageError(
                f"disk {self.name}: releasing {nbytes} B but only "
                f"{self.used_bytes} B are in use"
            )
        self.used_bytes -= nbytes

    def read(self, nbytes: int, detail: str = "") -> float:
        """Charge one random read of *nbytes*; returns seconds."""
        cost = self.profile.io_time(nbytes)
        self.clock.charge(cost, "disk-read", self.name, detail=detail, nbytes=nbytes)
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        self.stats.time_s += cost
        return cost

    def write(self, nbytes: int, detail: str = "") -> float:
        """Charge one random write of *nbytes*; returns seconds."""
        cost = self.profile.io_time(nbytes)
        self.clock.charge(cost, "disk-write", self.name, detail=detail, nbytes=nbytes)
        self.stats.writes += 1
        self.stats.bytes_written += nbytes
        self.stats.time_s += cost
        return cost
