"""File-level hierarchical storage manager (HSM) façade.

Simulates the commercial systems the paper discusses (FileTek StorHouse,
the DKRZ/CERA DXUL coupling): a *file* is the smallest unit of access, so a
request for any part of a file stages the **whole file** from tape into a
disk staging area first.  HEAVEN's central claim is that this granularity
wastes 90-99 % of the moved bytes for typical array subsetting — the HSM is
therefore the baseline of the retrieval experiments (E5) and also one of the
two attachment modes of HEAVEN itself (Kapitel 3.1.1).
"""

from __future__ import annotations

import logging
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import FaultError, HSMError, RetryExhaustedError
from ..faults import RetryPolicy
from .clock import SimClock
from .disk import DiskDevice
from .library import TapeLibrary
from .profiles import DiskProfile, DISK_ARRAY

logger = logging.getLogger("repro.tertiary.hsm")


@dataclass
class HSMFile:
    """Catalog entry of one archived file."""

    name: str
    size: int
    medium_id: str


@dataclass
class HSMStats:
    """Staging behaviour counters."""

    stage_requests: int = 0
    stage_hits: int = 0
    stage_misses: int = 0
    bytes_staged_from_tape: int = 0
    bytes_served: int = 0
    evictions: int = 0
    stage_faults: int = 0
    stage_retries: int = 0

    @property
    def hit_ratio(self) -> float:
        if not self.stage_requests:
            return 0.0
        return self.stage_hits / self.stage_requests


class HSMSystem:
    """Whole-file migrate/stage/purge manager over a tape library.

    Args:
        library: the automated tertiary-storage system holding migrated files.
        staging_profile: disk used as the online staging area.
        staging_capacity_bytes: cap of the staging area; least-recently-used
            files are purged when a new file does not fit.
        faults: fault plan consulted by the staging hook (defaults to the
            library's plan, so one seeded plan drives the whole stack).
        retry: recovery policy for transient staging faults (defaults to
            the library's policy).
        parallel_drives: drives :meth:`stage_files` may run concurrently
            (capped at the library's stations); ``1`` keeps batch staging
            serial.
    """

    def __init__(
        self,
        library: TapeLibrary,
        staging_profile: DiskProfile = DISK_ARRAY,
        staging_capacity_bytes: Optional[int] = None,
        faults=None,
        retry: Optional[RetryPolicy] = None,
        parallel_drives: int = 1,
    ) -> None:
        if parallel_drives < 1:
            raise HSMError("parallel_drives must be >= 1")
        self.library = library
        self.clock: SimClock = library.clock
        self.faults = faults if faults is not None else library.faults
        self.retry = retry if retry is not None else library.retry
        self.parallel_drives = parallel_drives
        self.disk = DiskDevice("hsm-staging", staging_profile, self.clock)
        self.staging_capacity = (
            staging_capacity_bytes
            if staging_capacity_bytes is not None
            else staging_profile.capacity_bytes
        )
        self._catalog: Dict[str, HSMFile] = {}
        #: staged files in LRU order (oldest first)
        self._staged: "OrderedDict[str, int]" = OrderedDict()
        self._payloads: Dict[str, bytes] = {}
        self.stats = HSMStats()

    # -- archive lifecycle -------------------------------------------------

    def archive_file(self, name: str, size: int, payload: Optional[bytes] = None) -> HSMFile:
        """Migrate a file to tape; returns its catalog entry.

        The file passes through the staging disk (one write) and is streamed
        to the allocated medium, mirroring a migration run.
        """
        if name in self._catalog:
            raise HSMError(f"file {name!r} already archived")
        if payload is not None and len(payload) != size:
            raise HSMError(f"payload of {len(payload)} B != declared size {size} B")
        self.disk.write(size, detail=f"migrate {name}")
        medium_id, _segment = self.library.write_segment(
            f"hsm/{name}", size, payload=payload
        )
        entry = HSMFile(name=name, size=size, medium_id=medium_id)
        self._catalog[name] = entry
        return entry

    def delete_file(self, name: str) -> None:
        """Remove a file from tape catalog and staging area."""
        entry = self._require(name)
        self.library.delete_segment(f"hsm/{name}")
        self.purge(name)
        del self._catalog[name]
        del entry  # explicit: entry is gone

    def files(self) -> Dict[str, HSMFile]:
        return dict(self._catalog)

    def is_staged(self, name: str) -> bool:
        return name in self._staged

    # -- staging -------------------------------------------------------------

    def stage_file(self, name: str) -> HSMFile:
        """Ensure the whole file is on the staging disk; returns its entry.

        A staged file costs one disk access; an unstaged file costs a full
        tape mount + seek + stream of *all* its bytes plus a staging-disk
        write — the file-granularity penalty HEAVEN removes.  Batches of
        files are better staged via :meth:`stage_files`, which can spread
        the misses over several drives.
        """
        entry = self._require(name)
        self.stats.stage_requests += 1
        if name in self._staged:
            self._staged.move_to_end(name)
            self.stats.stage_hits += 1
            logger.debug("stage hit for %s (%d B already on disk)", name, entry.size)
            return entry
        self.stats.stage_misses += 1
        logger.info(
            "stage miss for %s: staging all %d B from medium %s",
            name, entry.size, entry.medium_id,
        )
        self._make_room(entry.size)
        payload = self._staged_read(name, entry)
        self._land(name, entry, payload)
        return entry

    def stage_files(self, names: Sequence[str]) -> List[HSMFile]:
        """Stage a batch of files, spreading misses over several drives.

        With ``parallel_drives > 1`` (and a multi-drive library) the
        missing files become one tape-request batch dispatched through the
        :class:`~repro.core.scheduler.ParallelExecutor`: whole-media
        sweeps on per-drive timelines, the robot arm serialised between
        them, and each file landed on the staging disk via the assembly
        timeline while the drives stream on.  Otherwise the misses are
        staged serially, byte-identical to repeated :meth:`stage_file`
        calls.  Hits are LRU-refreshed either way.
        """
        entries = [self._require(name) for name in names]
        misses: List[HSMFile] = []
        for name, entry in zip(names, entries):
            self.stats.stage_requests += 1
            if name in self._staged:
                self._staged.move_to_end(name)
                self.stats.stage_hits += 1
                continue
            self.stats.stage_misses += 1
            if entry not in misses:
                misses.append(entry)
        if not misses:
            return entries
        if self.parallel_drives <= 1 or len(self.library.drives) <= 1:
            for entry in misses:
                self._make_room(entry.size)
                payload = self._staged_read(entry.name, entry)
                self._land(entry.name, entry, payload)
            return entries
        # Imported lazily: the executor lives in the core layer, which
        # itself imports the tertiary package.
        from ..core.scheduler import ParallelExecutor, TapeRequest

        requests = []
        by_key: Dict[str, HSMFile] = {}
        for entry in misses:
            key = f"hsm/{entry.name}"
            # The HSM-level fault gate fires per file before dispatch —
            # request-level failures are the HSM's own, not the drives'.
            self._retry_stage(entry.name, lambda: None)
            _mid, segment = self.library.segment(key)
            by_key[key] = entry
            requests.append(
                TapeRequest(key, entry.medium_id, segment.offset, segment.length)
            )

        def land(request) -> None:
            entry = by_key[request.key]
            payload = self.library.medium(request.medium_id).payload(request.key)
            self._make_room(entry.size)
            self._land(entry.name, entry, payload)

        ParallelExecutor(
            self.library, num_drives=self.parallel_drives
        ).execute(requests, on_staged=land)
        return entries

    def _land(self, name: str, entry: HSMFile, payload: Optional[bytes]) -> None:
        """Write one streamed file to the staging disk and catalog it."""
        self.disk.write(entry.size, detail=f"stage {name}")
        self.disk.reserve(entry.size)
        self._staged[name] = entry.size
        if payload is not None:
            self._payloads[name] = payload
        self.stats.bytes_staged_from_tape += entry.size

    def read_file(
        self, name: str, offset: int = 0, length: Optional[int] = None
    ) -> Optional[bytes]:
        """Read *length* bytes at *offset* — stages the whole file first.

        This is the paper's point: even a 1 % subset request forces a 100 %
        stage.  Returns the requested bytes when payloads are retained.
        """
        entry = self.stage_file(name)
        if length is None:
            length = entry.size - offset
        if offset < 0 or offset + length > entry.size:
            raise HSMError(
                f"read [{offset}, {offset + length}) outside file {name!r} "
                f"of {entry.size} B"
            )
        self.disk.read(length, detail=f"read {name}")
        self.stats.bytes_served += length
        payload = self._payloads.get(name)
        if payload is None:
            return None
        return payload[offset : offset + length]

    def purge(self, name: str) -> bool:
        """Drop a file from the staging area (tape copy remains)."""
        size = self._staged.pop(name, None)
        self._payloads.pop(name, None)
        if size is None:
            return False
        self.disk.release(size)
        logger.debug("purged %s (%d B) from staging area", name, size)
        return True

    def _staged_read(self, name: str, entry: HSMFile) -> Optional[bytes]:
        """Tape read of one file, retrying transient staging faults."""
        return self._retry_stage(
            name,
            lambda: self.library.read_segment(
                f"hsm/{name}", medium_id=entry.medium_id
            ),
        )

    def _retry_stage(self, name: str, action: Callable[[], Optional[bytes]]):
        """Run *action* behind the HSM fault gate, retrying transient faults.

        The ``hsm`` fault hook models request-level failures of the HSM
        itself (lost staging requests, staging-disk hiccups); faults below
        it — mounts, media — are already retried inside the library and
        surface here only as :class:`RetryExhaustedError`, which is final.
        """
        attempt = 0
        while True:
            try:
                self.faults.on_hsm_stage(name)
                return action()
            except RetryExhaustedError:
                raise
            except FaultError as fault:
                self.stats.stage_faults += 1
                attempt += 1
                if attempt >= self.retry.max_attempts:
                    raise RetryExhaustedError(
                        f"staging of {name!r} failed after {attempt} attempts: "
                        f"{fault}"
                    ) from fault
                self.stats.stage_retries += 1
                delay = self.retry.delay(attempt)
                if delay > 0:
                    self.clock.charge(delay, "backoff", "hsm-staging", detail=name)
                logger.warning(
                    "staging fault for %s (attempt %d/%d): %s",
                    name, attempt, self.retry.max_attempts, fault,
                )

    # -- internals -----------------------------------------------------------

    def _require(self, name: str) -> HSMFile:
        try:
            return self._catalog[name]
        except KeyError:
            raise HSMError(f"file {name!r} not archived") from None

    def _make_room(self, nbytes: int) -> None:
        if nbytes > self.staging_capacity:
            raise HSMError(
                f"file of {nbytes} B exceeds staging capacity "
                f"{self.staging_capacity} B"
            )
        while self.staging_used + nbytes > self.staging_capacity:
            victim, size = self._staged.popitem(last=False)
            self._payloads.pop(victim, None)
            self.disk.release(size)
            self.stats.evictions += 1
            logger.debug(
                "evicted %s (%d B) from staging to make room for %d B",
                victim, size, nbytes,
            )

    @property
    def staging_used(self) -> int:
        return sum(self._staged.values())
