"""Virtual time base of the tertiary-storage simulator.

Every device in :mod:`repro.tertiary` charges its cost model against a shared
:class:`SimClock` instead of sleeping, so experiments that simulate hours of
tape activity run in milliseconds of host time.  The clock also keeps an
:class:`EventLog` used by benchmarks to break total time down into mount,
seek and transfer components — the quantities the HEAVEN paper optimises.

The event log is the *sink* of the observability layer (:mod:`repro.obs`):
spans remember absolute log cursors at enter/exit and attribute every charged
virtual second to the span that was active when it was charged.  Cursors are
**absolute** append indices, so they stay valid in bounded mode, where the
log keeps only the newest ``max_events`` events and counts the rest as
dropped (week-long simulated runs must not grow memory without bound).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence


@dataclass(frozen=True)
class Event:
    """One timed simulator event.

    Attributes:
        time: virtual time at which the event *started* (seconds).
        duration: how long the event took (seconds).
        kind: event class, e.g. ``"mount"``, ``"seek"``, ``"transfer"``.
        device: identifier of the device that performed the action.
        detail: free-form human-readable description.
        bytes: payload size for transfer events, 0 otherwise.
    """

    time: float
    duration: float
    kind: str
    device: str
    detail: str = ""
    bytes: int = 0


@dataclass
class KindTotals:
    """Aggregate of all events of one kind inside a log window."""

    count: int = 0
    seconds: float = 0.0
    bytes: int = 0

    def add(self, event: Event) -> None:
        self.count += 1
        self.seconds += event.duration
        self.bytes += event.bytes


class EventLog:
    """Record of simulator events with per-kind aggregation.

    Unbounded by default.  With ``max_events`` set, only the newest events
    are retained: once the cap is reached, the oldest half is dropped in one
    chunk (amortised O(1) appends) and counted in :attr:`dropped`.

    Positions in the log are expressed as *absolute cursors* — the total
    number of events ever appended — so a cursor taken before a drop still
    addresses the right window afterwards (clamped to what is retained).
    """

    def __init__(self, max_events: Optional[int] = None) -> None:
        if max_events is not None and max_events < 2:
            raise ValueError("max_events must be >= 2 (or None for unbounded)")
        self._events: List[Event] = []
        self._max_events = max_events
        #: absolute cursor of the oldest retained event
        self._base = 0

    @property
    def max_events(self) -> Optional[int]:
        return self._max_events

    def set_limit(self, max_events: Optional[int]) -> None:
        """(Re)configure bounded mode; drops oldest events if over the cap."""
        if max_events is not None and max_events < 2:
            raise ValueError("max_events must be >= 2 (or None for unbounded)")
        self._max_events = max_events
        if max_events is not None and len(self._events) > max_events:
            drop = len(self._events) - max_events
            del self._events[:drop]
            self._base += drop

    @property
    def dropped(self) -> int:
        """Events discarded by bounded mode so far."""
        return self._base

    @property
    def total_appended(self) -> int:
        """Events ever appended (retained + dropped)."""
        return self._base + len(self._events)

    def append(self, event: Event) -> None:
        if self._max_events is not None and len(self._events) >= self._max_events:
            drop = max(1, self._max_events // 2)
            del self._events[:drop]
            self._base += drop
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    # -- windows -------------------------------------------------------------

    def cursor(self) -> int:
        """Absolute position after the newest event (use as window start)."""
        return self.total_appended

    def window(self, start: int, end: Optional[int] = None) -> List[Event]:
        """Retained events with absolute cursor in ``[start, end)``."""
        stop = len(self._events) if end is None else max(0, end - self._base)
        return self._events[max(0, start - self._base) : stop]

    def since(self, cursor: int) -> List[Event]:
        """Retained events appended at or after the absolute *cursor*."""
        return self.window(cursor)

    def aggregate(
        self, start: int = 0, end: Optional[int] = None
    ) -> Dict[str, KindTotals]:
        """Per-kind count/seconds/bytes totals over a cursor window."""
        out: Dict[str, KindTotals] = {}
        for event in self.window(start, end):
            totals = out.get(event.kind)
            if totals is None:
                totals = out[event.kind] = KindTotals()
            totals.add(event)
        return out

    # -- whole-log queries ----------------------------------------------------

    def events(self, kind: Optional[str] = None) -> List[Event]:
        """Return all retained events, optionally filtered by *kind*."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def count(self, kind: str) -> int:
        """Number of retained events of the given *kind*."""
        return sum(1 for e in self._events if e.kind == kind)

    def time_in(self, kind: str) -> float:
        """Total virtual seconds spent in retained events of *kind*."""
        return sum(e.duration for e in self._events if e.kind == kind)

    def bytes_in(self, kind: str) -> int:
        """Total bytes moved by retained events of *kind*."""
        return sum(e.bytes for e in self._events if e.kind == kind)

    def breakdown(
        self, start: int = 0, end: Optional[int] = None
    ) -> Dict[str, float]:
        """Map of event kind to total virtual seconds spent in it."""
        out: Dict[str, float] = {}
        for event in self.window(start, end):
            out[event.kind] = out.get(event.kind, 0.0) + event.duration
        return out

    def clear(self) -> None:
        self._events.clear()
        self._base = 0


@dataclass
class Timeline:
    """One device's private virtual timeline inside a parallel batch.

    The simulator normally runs on a single global clock; the parallel
    executor (Kapitel 3.7.3) instead gives every drive its own timeline,
    all rooted at the same global start instant.  While a timeline is
    active (see :meth:`SimClock.timeline`), charges advance *it* rather
    than the global clock, so events carry true per-device start times
    even though the host executes the drives one after another.

    Attributes:
        name: owning device id (used in reports).
        now: current local virtual time (absolute seconds, same origin as
            the global clock).
        started_at: local time when the timeline was (re)based.
        wait_seconds: time spent blocked on shared resources (robot arm)
            rather than doing device work.
    """

    name: str
    now: float = 0.0
    started_at: float = 0.0
    wait_seconds: float = 0.0

    @classmethod
    def at(cls, name: str, start: float) -> "Timeline":
        return cls(name=name, now=start, started_at=start)

    def rebase(self, start: float) -> None:
        """Restart the timeline at *start* (a new parallel batch)."""
        self.now = start
        self.started_at = start
        self.wait_seconds = 0.0

    @property
    def elapsed(self) -> float:
        """Local seconds since the last rebase (busy + waiting)."""
        return self.now - self.started_at

    @property
    def busy_seconds(self) -> float:
        """Local seconds spent doing device work (elapsed minus waits)."""
        return self.elapsed - self.wait_seconds


class SimClock:
    """Monotonically advancing virtual clock.

    The clock starts at 0.0 virtual seconds.  Devices call :meth:`charge`
    with a cost and a description; the clock advances and logs the event.
    ``on_advance`` callbacks let higher layers (e.g. the prefetcher) observe
    the passage of virtual time.

    **Two-clock design.** The global time only ever moves forward, but a
    :class:`Timeline` can be pushed with :meth:`timeline`; while active,
    :attr:`now`/:meth:`advance`/:meth:`charge` operate on the timeline's
    local time instead.  Listeners fire only on *global* advances (a
    timeline is a what-if lane; global time catches up once at
    :meth:`sync_to`), so time-driven layers never observe the same span
    twice.

    Args:
        max_events: bound for the attached :class:`EventLog` (None keeps
            every event — the default, matching benchmark expectations).
    """

    def __init__(self, max_events: Optional[int] = None) -> None:
        self._now = 0.0
        self.log = EventLog(max_events=max_events)
        self._listeners: List[Callable[[float, float], None]] = []
        self._timelines: List[Timeline] = []

    @property
    def now(self) -> float:
        """Current virtual time in seconds (of the active timeline, if any)."""
        if self._timelines:
            return self._timelines[-1].now
        return self._now

    @property
    def global_now(self) -> float:
        """Global virtual time, ignoring any active timeline."""
        return self._now

    @property
    def active_timeline(self) -> Optional[Timeline]:
        return self._timelines[-1] if self._timelines else None

    def advance(self, seconds: float) -> float:
        """Advance the clock by *seconds* (must be >= 0); returns new time.

        Under an active timeline only that timeline advances and listeners
        are not notified — global time catches up at :meth:`sync_to`.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds!r}")
        if self._timelines:
            timeline = self._timelines[-1]
            timeline.now += seconds
            return timeline.now
        previous = self._now
        self._now += seconds
        for listener in self._listeners:
            listener(previous, self._now)
        return self._now

    def charge(
        self,
        seconds: float,
        kind: str,
        device: str,
        detail: str = "",
        nbytes: int = 0,
    ) -> Event:
        """Advance time by *seconds* and record an :class:`Event` for it."""
        event = Event(
            time=self.now,
            duration=seconds,
            kind=kind,
            device=device,
            detail=detail,
            bytes=nbytes,
        )
        self.advance(seconds)
        self.log.append(event)
        return event

    @contextmanager
    def timeline(self, timeline: Timeline):
        """Route charges to *timeline* for the duration of the block.

        Nestable: an inner ``with`` (e.g. the assembly lane inside a drive
        sweep) shadows the outer timeline and restores it on exit.
        """
        self._timelines.append(timeline)
        try:
            yield timeline
        finally:
            popped = self._timelines.pop()
            assert popped is timeline, "timeline stack corrupted"

    def sync_to(self, timelines: Sequence[Timeline]) -> float:
        """Advance global time to the latest timeline end; returns new now.

        Called once at the end of a parallel batch: the wall-clock of the
        batch is the max of the per-device timelines (its makespan), and
        listeners observe that single jump.
        """
        if self._timelines:
            raise RuntimeError("sync_to must run outside any active timeline")
        target = max((t.now for t in timelines), default=self._now)
        if target > self._now:
            self.advance(target - self._now)
        return self._now

    def on_advance(self, listener: Callable[[float, float], None]) -> None:
        """Register *listener(old_time, new_time)* called on every advance."""
        self._listeners.append(listener)

    def reset(self) -> None:
        """Reset time to zero and clear the event log (listeners kept)."""
        self._now = 0.0
        self._timelines.clear()
        self.log.clear()


@dataclass
class Stopwatch:
    """Measures elapsed virtual time between two points on a clock."""

    clock: SimClock
    started_at: float = field(default=0.0)

    def __post_init__(self) -> None:
        self.started_at = self.clock.now

    def restart(self) -> None:
        self.started_at = self.clock.now

    @property
    def elapsed(self) -> float:
        return self.clock.now - self.started_at
