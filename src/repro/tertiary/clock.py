"""Virtual time base of the tertiary-storage simulator.

Every device in :mod:`repro.tertiary` charges its cost model against a shared
:class:`SimClock` instead of sleeping, so experiments that simulate hours of
tape activity run in milliseconds of host time.  The clock also keeps an
:class:`EventLog` used by benchmarks to break total time down into mount,
seek and transfer components — the quantities the HEAVEN paper optimises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class Event:
    """One timed simulator event.

    Attributes:
        time: virtual time at which the event *started* (seconds).
        duration: how long the event took (seconds).
        kind: event class, e.g. ``"mount"``, ``"seek"``, ``"transfer"``.
        device: identifier of the device that performed the action.
        detail: free-form human-readable description.
        bytes: payload size for transfer events, 0 otherwise.
    """

    time: float
    duration: float
    kind: str
    device: str
    detail: str = ""
    bytes: int = 0


class EventLog:
    """Append-only record of simulator events with per-kind aggregation."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def append(self, event: Event) -> None:
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def events(self, kind: Optional[str] = None) -> List[Event]:
        """Return all events, optionally filtered by *kind*."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def count(self, kind: str) -> int:
        """Number of events of the given *kind*."""
        return sum(1 for e in self._events if e.kind == kind)

    def time_in(self, kind: str) -> float:
        """Total virtual seconds spent in events of *kind*."""
        return sum(e.duration for e in self._events if e.kind == kind)

    def bytes_in(self, kind: str) -> int:
        """Total bytes moved by events of *kind*."""
        return sum(e.bytes for e in self._events if e.kind == kind)

    def breakdown(self) -> Dict[str, float]:
        """Map of event kind to total virtual seconds spent in it."""
        out: Dict[str, float] = {}
        for e in self._events:
            out[e.kind] = out.get(e.kind, 0.0) + e.duration
        return out

    def clear(self) -> None:
        self._events.clear()


class SimClock:
    """Monotonically advancing virtual clock.

    The clock starts at 0.0 virtual seconds.  Devices call :meth:`charge`
    with a cost and a description; the clock advances and logs the event.
    ``on_advance`` callbacks let higher layers (e.g. the prefetcher) observe
    the passage of virtual time.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self.log = EventLog()
        self._listeners: List[Callable[[float, float], None]] = []

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by *seconds* (must be >= 0); returns new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds!r}")
        previous = self._now
        self._now += seconds
        for listener in self._listeners:
            listener(previous, self._now)
        return self._now

    def charge(
        self,
        seconds: float,
        kind: str,
        device: str,
        detail: str = "",
        nbytes: int = 0,
    ) -> Event:
        """Advance time by *seconds* and record an :class:`Event` for it."""
        event = Event(
            time=self._now,
            duration=seconds,
            kind=kind,
            device=device,
            detail=detail,
            bytes=nbytes,
        )
        self.advance(seconds)
        self.log.append(event)
        return event

    def on_advance(self, listener: Callable[[float, float], None]) -> None:
        """Register *listener(old_time, new_time)* called on every advance."""
        self._listeners.append(listener)

    def reset(self) -> None:
        """Reset time to zero and clear the event log (listeners kept)."""
        self._now = 0.0
        self.log.clear()


@dataclass
class Stopwatch:
    """Measures elapsed virtual time between two points on a clock."""

    clock: SimClock
    started_at: float = field(default=0.0)

    def __post_init__(self) -> None:
        self.started_at = self.clock.now

    def restart(self) -> None:
        self.started_at = self.clock.now

    @property
    def elapsed(self) -> float:
        return self.clock.now - self.started_at
