"""Tape/optical drive model: load, position, stream, with full cost tracking.

The drive is where the paper's dominant latencies live: media exchange
(12-40 s) and positioning (mean 27-95 s).  Every operation charges the shared
:class:`~repro.tertiary.clock.SimClock` and updates per-drive counters so the
benchmarks can attribute total time to mounts, seeks and transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import SegmentNotFoundError, StorageError
from ..faults import NO_FAULTS
from .clock import SimClock, Timeline
from .media import Medium, Segment
from .profiles import TapeProfile


@dataclass
class DriveStats:
    """Cumulative operation counters of one drive."""

    loads: int = 0
    unloads: int = 0
    seeks: int = 0
    seek_distance_bytes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    time_loading_s: float = 0.0
    time_seeking_s: float = 0.0
    time_transferring_s: float = 0.0

    @property
    def busy_time_s(self) -> float:
        return self.time_loading_s + self.time_seeking_s + self.time_transferring_s


class Drive:
    """One read/write station of the tape library.

    The head position is tracked in bytes from the physical beginning of the
    loaded medium.  Seeks are charged linearly in wind distance (see
    :meth:`TapeProfile.seek_time`), reads and writes move the head to the end
    of the accessed extent, and tape drives rewind before unloading.
    """

    def __init__(
        self,
        drive_id: str,
        profile: TapeProfile,
        clock: SimClock,
        faults=NO_FAULTS,
    ) -> None:
        self.drive_id = drive_id
        self.profile = profile
        self.clock = clock
        self.faults = faults if faults is not None else NO_FAULTS
        self.medium: Optional[Medium] = None
        self.head_position = 0
        self.stats = DriveStats()
        #: virtual time of the last completed operation (for LRU drive pick)
        self.last_used = 0.0
        #: private timeline used by the parallel executor (lazily created)
        self.timeline: Optional[Timeline] = None

    def timeline_at(self, start: float) -> Timeline:
        """This drive's :class:`Timeline`, rebased to *start* for a new batch."""
        if self.timeline is None:
            self.timeline = Timeline.at(self.drive_id, start)
        else:
            self.timeline.rebase(start)
        return self.timeline

    # -- medium handling ---------------------------------------------------

    @property
    def loaded(self) -> bool:
        return self.medium is not None

    def load(self, medium: Medium) -> None:
        """Thread *medium* into the drive (drive-internal load time only).

        The robot's exchange time is charged separately by the
        :class:`~repro.tertiary.robot.Robot`; this method charges the
        drive-internal load/thread cost and resets the head to position 0.
        """
        if self.loaded:
            raise StorageError(
                f"drive {self.drive_id} already holds {self.medium.medium_id}"
            )
        # Fault hook: an injected mount failure raises before any state or
        # load time is committed (the exchange time already spent stands).
        self.faults.on_drive_load(self.drive_id, medium.medium_id)
        cost = self.profile.load_time_s
        self.clock.charge(cost, "load", self.drive_id, detail=medium.medium_id)
        self.medium = medium
        self.head_position = 0
        medium.mount_count += 1
        self.stats.loads += 1
        self.stats.time_loading_s += cost
        self.last_used = self.clock.now

    def unload(self) -> Medium:
        """Eject the loaded medium, rewinding first if the profile needs it."""
        medium = self._require_medium()
        if self.profile.rewind_before_unload and self.head_position > 0:
            self._seek_to(0, reason="rewind")
        self.medium = None
        self.stats.unloads += 1
        self.last_used = self.clock.now
        return medium

    # -- positioning and transfer -------------------------------------------

    def seek(self, offset: int) -> float:
        """Position the head at byte *offset*; returns seconds charged."""
        medium = self._require_medium()
        if not 0 <= offset <= medium.capacity:
            raise StorageError(
                f"seek offset {offset} outside medium {medium.medium_id} "
                f"(capacity {medium.capacity})"
            )
        return self._seek_to(offset, reason="seek")

    def read_segment(self, name: str) -> Optional[bytes]:
        """Seek to the named segment and stream it; returns payload if kept."""
        medium = self._require_medium()
        segment = medium.segment(name)
        self._seek_to(segment.offset, reason="seek")
        self.faults.on_media_read(medium, segment.offset, segment.length, self.drive_id)
        self._transfer(segment.length, writing=False, detail=name)
        return medium.payload(name)

    def read_extent(self, offset: int, length: int) -> None:
        """Seek to *offset* and stream *length* raw bytes (no payload)."""
        medium = self._require_medium()
        self._seek_to(offset, reason="seek")
        self.faults.on_media_read(medium, offset, length, self.drive_id)
        self._transfer(length, writing=False, detail=f"extent@{offset}")

    def append_segment(
        self, name: str, length: int, payload: Optional[bytes] = None
    ) -> Segment:
        """Append a segment at the medium's write position and stream it.

        Every discrete append pays the profile's stop/start penalty (the
        drive leaves streaming mode between segments), so many small
        appends are disproportionately expensive — the behaviour HEAVEN's
        super-tile export exploits.
        """
        medium = self._require_medium()
        self._seek_to(medium.write_position, reason="seek")
        segment = medium.append(name, length, payload)
        penalty = self.profile.stop_start_penalty_s
        if penalty > 0:
            self.clock.charge(penalty, "settle", self.drive_id, detail=name)
            self.stats.time_seeking_s += penalty
        self._transfer(length, writing=True, detail=name)
        return segment

    # -- internals ---------------------------------------------------------

    def _require_medium(self) -> Medium:
        if self.medium is None:
            raise StorageError(f"drive {self.drive_id} has no medium loaded")
        return self.medium

    def _seek_to(self, offset: int, reason: str) -> float:
        distance = abs(offset - self.head_position)
        if distance == 0:
            return 0.0
        cost = self.profile.seek_time(distance)
        self.clock.charge(
            cost,
            reason,
            self.drive_id,
            detail=f"{self.head_position}->{offset}",
        )
        self.head_position = offset
        self.stats.seeks += 1
        self.stats.seek_distance_bytes += distance
        self.stats.time_seeking_s += cost
        self.last_used = self.clock.now
        return cost

    def _transfer(self, nbytes: int, writing: bool, detail: str) -> float:
        # Fault hook: a drive stall charges extra "fault" seconds but the
        # stream still completes — stalls degrade latency, not correctness.
        self.faults.on_transfer(self.drive_id, nbytes)
        cost = self.profile.transfer_time(nbytes)
        kind = "write" if writing else "read"
        self.clock.charge(cost, kind, self.drive_id, detail=detail, nbytes=nbytes)
        self.head_position += nbytes
        if writing:
            self.stats.bytes_written += nbytes
        else:
            self.stats.bytes_read += nbytes
        self.stats.time_transferring_s += cost
        self.last_used = self.clock.now
        return cost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        held = self.medium.medium_id if self.medium else "-"
        return f"Drive({self.drive_id!r}, medium={held}, head={self.head_position})"
