"""Automated tape library: media shelf + drives + robot behind one API.

This is the component HEAVEN talks to.  It hides drive selection and media
exchanges and exposes segment-level reads/writes whose *costs* follow the
profiles in :mod:`repro.tertiary.profiles`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import (
    DriveFaultError,
    FaultError,
    MediumFullError,
    MediumNotFoundError,
    RetryExhaustedError,
    SegmentNotFoundError,
    StorageError,
)
from ..faults import NO_FAULTS, RetryPolicy
from .clock import SimClock
from .drive import Drive
from .media import Medium, MediumStats, Segment
from .profiles import TapeProfile


@dataclass
class LibraryStats:
    """Snapshot of library-wide counters for benchmark reports."""

    media: int
    drives: int
    exchanges: int
    seeks: int
    seek_distance_bytes: int
    bytes_read: int
    bytes_written: int
    time_exchanging_s: float
    time_seeking_s: float
    time_transferring_s: float
    #: seconds drives spent waiting on the robot arm (parallel batches)
    time_robot_wait_s: float = 0.0

    @property
    def total_device_time_s(self) -> float:
        return self.time_exchanging_s + self.time_seeking_s + self.time_transferring_s


@dataclass
class RecoveryStats:
    """Counters of the library's fault-recovery layer."""

    retries: int = 0
    failovers: int = 0
    backoff_seconds: float = 0.0
    exhausted: int = 0


class TapeLibrary:
    """An automated tertiary-storage system with one robot and N drives.

    Args:
        profile: drive/media technology for the whole library.
        num_drives: number of read/write stations sharing the robot.
        clock: shared virtual clock; one is created if omitted.
        retain_payload: keep segment bytes on media (see :class:`Medium`).
        faults: fault-injection plan shared by robot and drives (default:
            the inert :data:`~repro.faults.NO_FAULTS` plan).
        retry: recovery policy for faulted mounts and reads; only engaged
            when a fault actually fires, so fault-free runs are unchanged.
    """

    def __init__(
        self,
        profile: TapeProfile,
        num_drives: int = 1,
        clock: Optional[SimClock] = None,
        retain_payload: bool = True,
        faults=None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        from .robot import Robot  # local import to avoid cycle in docs builds

        if num_drives < 1:
            raise ValueError("a library needs at least one drive")
        self.profile = profile
        self.clock = clock if clock is not None else SimClock()
        self.retain_payload = retain_payload
        self.faults = faults if faults is not None else NO_FAULTS
        self.faults.bind(self.clock)
        self.retry = retry if retry is not None else RetryPolicy()
        self.recovery = RecoveryStats()
        self.drives: List[Drive] = [
            Drive(f"drive-{i}", profile, self.clock, faults=self.faults)
            for i in range(num_drives)
        ]
        self.robot = Robot("robot-0", profile, self.clock, faults=self.faults)
        self._media: Dict[str, Medium] = {}
        self._media_order: List[str] = []
        self._id_counter = itertools.count()
        #: global directory segment name -> medium id (one copy per segment)
        self._directory: Dict[str, str] = {}

    # -- media management ----------------------------------------------------

    def new_medium(self, medium_id: Optional[str] = None) -> Medium:
        """Register a fresh medium on the shelf and return it."""
        if medium_id is None:
            medium_id = f"tape-{next(self._id_counter):04d}"
        if medium_id in self._media:
            raise ValueError(f"medium id {medium_id!r} already registered")
        medium = Medium(medium_id, self.profile, retain_payload=self.retain_payload)
        self._media[medium_id] = medium
        self._media_order.append(medium_id)
        return medium

    def medium(self, medium_id: str) -> Medium:
        try:
            return self._media[medium_id]
        except KeyError:
            raise MediumNotFoundError(f"unknown medium {medium_id!r}") from None

    def media(self) -> List[Medium]:
        """All registered media in registration order."""
        return [self._media[m] for m in self._media_order]

    def allocate_medium(self, nbytes: int) -> Medium:
        """Medium with >= *nbytes* free, preferring the current fill target.

        Media are filled in registration order (the natural archive append
        pattern); a new medium is created when nothing fits.
        """
        for medium_id in self._media_order:
            medium = self._media[medium_id]
            if medium.fits(nbytes):
                return medium
        if nbytes > self.profile.media_capacity_bytes:
            raise MediumFullError(
                f"segment of {nbytes} B exceeds media capacity "
                f"{self.profile.media_capacity_bytes} B"
            )
        return self.new_medium()

    # -- mounting ------------------------------------------------------------

    def mounted_drive(self, medium_id: str) -> Optional[Drive]:
        """Drive currently holding *medium_id*, if any."""
        for drive in self.drives:
            if drive.medium is not None and drive.medium.medium_id == medium_id:
                return drive
        return None

    def mount(self, medium_id: str) -> Drive:
        """Ensure the medium is in a drive; returns that drive.

        A free drive is used when available, otherwise the least-recently
        used drive is recycled (its medium is exchanged by the robot).

        Injected faults engage the recovery layer: a failed attempt backs
        off per the :class:`~repro.faults.RetryPolicy` and is retried; a
        drive that rejected the load (mount failure) is excluded so the
        retry *fails over* to another drive.  When the retry budget is
        spent the last fault escalates to :class:`RetryExhaustedError`.
        """
        medium = self.medium(medium_id)
        drive = self.mounted_drive(medium_id)
        if drive is not None:
            return drive
        attempt = 0
        excluded: set = set()
        while True:
            target = self._pick_drive(excluded)
            try:
                self.robot.mount(medium, target)
                return target
            except FaultError as fault:
                attempt += 1
                if (
                    isinstance(fault, DriveFaultError)
                    and len(excluded) + 1 < len(self.drives)
                ):
                    excluded.add(target.drive_id)
                    self.recovery.failovers += 1
                if attempt >= self.retry.max_attempts:
                    self.recovery.exhausted += 1
                    raise RetryExhaustedError(
                        f"mount of {medium_id} failed after {attempt} attempts: "
                        f"{fault}"
                    ) from fault
                self._backoff(attempt, f"mount {medium_id}")

    def mount_on(self, medium_id: str, drive: Drive) -> Drive:
        """Mount *medium_id* into the designated *drive*; returns that drive.

        Used by the parallel executor, which owns the drive assignment:
        unlike :meth:`mount` there is no free/LRU drive selection and no
        failover — faulted mounts back off and retry on the same drive
        until the retry budget is spent.  Raises
        :class:`~repro.errors.StorageError` if the medium currently sits in
        a *different* drive (media are indivisible across timelines).
        """
        medium = self.medium(medium_id)
        holder = self.mounted_drive(medium_id)
        if holder is not None:
            if holder is drive:
                return drive
            raise StorageError(
                f"medium {medium_id} is mounted in {holder.drive_id}, "
                f"cannot mount into {drive.drive_id}"
            )
        attempt = 0
        while True:
            try:
                self.robot.mount(medium, drive)
                return drive
            except FaultError as fault:
                attempt += 1
                if attempt >= self.retry.max_attempts:
                    self.recovery.exhausted += 1
                    raise RetryExhaustedError(
                        f"mount of {medium_id} on {drive.drive_id} failed "
                        f"after {attempt} attempts: {fault}"
                    ) from fault
                self._backoff(attempt, f"mount {medium_id} on {drive.drive_id}")

    def _pick_drive(self, excluded: set) -> Drive:
        """Mount target: free drive first, then LRU; honours failover bans."""
        candidates = [d for d in self.drives if d.drive_id not in excluded]
        if not candidates:
            candidates = self.drives
        free = next((d for d in candidates if not d.loaded), None)
        return free if free is not None else min(candidates, key=lambda d: d.last_used)

    def _backoff(self, attempt: int, detail: str) -> None:
        """Charge one exponential-backoff delay before retry *attempt*."""
        delay = self.retry.delay(attempt)
        self.recovery.retries += 1
        self.recovery.backoff_seconds += delay
        if delay > 0:
            self.clock.charge(delay, "backoff", "library", detail=detail)

    def _with_read_retry(self, operation, detail: str):
        """Run a faultable read, retrying transient faults with backoff.

        Mount exhaustion inside *operation* already carries its own retry
        history and is passed through untouched.
        """
        attempt = 0
        while True:
            try:
                return operation()
            except RetryExhaustedError:
                raise
            except FaultError as fault:
                attempt += 1
                if attempt >= self.retry.max_attempts:
                    self.recovery.exhausted += 1
                    raise RetryExhaustedError(
                        f"{detail} failed after {attempt} attempts: {fault}"
                    ) from fault
                self._backoff(attempt, detail)

    def unmount_all(self) -> None:
        """Return every loaded medium to the shelf (end-of-batch cleanup)."""
        for drive in self.drives:
            if drive.loaded:
                self.robot.dismount(drive)

    # -- segment I/O -----------------------------------------------------------

    def write_segment(
        self,
        name: str,
        length: int,
        payload: Optional[bytes] = None,
        medium_id: Optional[str] = None,
    ) -> Tuple[str, Segment]:
        """Append a named segment; returns ``(medium_id, segment)``.

        When *medium_id* is omitted the library picks (or creates) a medium
        via :meth:`allocate_medium`.
        """
        if name in self._directory:
            raise ValueError(f"segment {name!r} already stored in library")
        medium = (
            self.medium(medium_id) if medium_id is not None else self.allocate_medium(length)
        )
        drive = self.mount(medium.medium_id)
        segment = drive.append_segment(name, length, payload)
        self._directory[name] = medium.medium_id
        return medium.medium_id, segment

    def read_segment(self, name: str, medium_id: Optional[str] = None) -> Optional[bytes]:
        """Mount, position and stream the named segment; payload if retained.

        Transient media faults are retried with backoff (the drive re-reads
        the extent); persistent faults escalate to ``RetryExhaustedError``.
        """
        medium_id = medium_id or self.locate(name)
        return self._with_read_retry(
            lambda: self.mount(medium_id).read_segment(name),
            detail=f"read segment {name}",
        )

    def read_extent(self, medium_id: str, offset: int, length: int) -> None:
        """Stream a raw extent (used for whole-medium or multi-segment sweeps)."""
        self._with_read_retry(
            lambda: self.mount(medium_id).read_extent(offset, length),
            detail=f"read extent {medium_id}@{offset}",
        )

    def read_extent_on(self, drive: Drive, offset: int, length: int) -> None:
        """Stream a raw extent on a specific, already-mounted drive.

        The parallel executor pins media to drives itself (via
        :meth:`mount_on`), so reads must not re-enter the free/LRU drive
        selection of :meth:`read_extent`.  Transient faults retry with
        backoff exactly like the medium-addressed path.
        """
        self._with_read_retry(
            lambda: drive.read_extent(offset, length),
            detail=f"read extent {drive.drive_id}@{offset}",
        )

    def delete_segment(self, name: str) -> None:
        """Drop a segment from its medium's map and the directory."""
        medium_id = self.locate(name)
        self.medium(medium_id).delete(name)
        del self._directory[name]

    def locate(self, name: str) -> str:
        """Medium id holding segment *name*."""
        try:
            return self._directory[name]
        except KeyError:
            raise SegmentNotFoundError(f"segment {name!r} not in library") from None

    def has_segment(self, name: str) -> bool:
        return name in self._directory

    def segment(self, name: str) -> Tuple[str, Segment]:
        """``(medium_id, extent)`` of the named segment."""
        medium_id = self.locate(name)
        return medium_id, self.medium(medium_id).segment(name)

    # -- statistics ------------------------------------------------------------

    def stats(self) -> LibraryStats:
        """Aggregate robot and drive counters into one snapshot."""
        return LibraryStats(
            media=len(self._media),
            drives=len(self.drives),
            exchanges=self.robot.stats.exchanges,
            seeks=sum(d.stats.seeks for d in self.drives),
            seek_distance_bytes=sum(d.stats.seek_distance_bytes for d in self.drives),
            bytes_read=sum(d.stats.bytes_read for d in self.drives),
            bytes_written=sum(d.stats.bytes_written for d in self.drives),
            time_exchanging_s=self.robot.stats.time_s,
            time_seeking_s=sum(d.stats.time_seeking_s for d in self.drives),
            time_transferring_s=sum(d.stats.time_transferring_s for d in self.drives),
            time_robot_wait_s=self.robot.stats.wait_s,
        )

    def media_stats(self) -> List[MediumStats]:
        return [MediumStats.of(m) for m in self.media()]
