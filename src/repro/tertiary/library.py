"""Automated tape library: media shelf + drives + robot behind one API.

This is the component HEAVEN talks to.  It hides drive selection and media
exchanges and exposes segment-level reads/writes whose *costs* follow the
profiles in :mod:`repro.tertiary.profiles`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import MediumFullError, MediumNotFoundError, SegmentNotFoundError
from .clock import SimClock
from .drive import Drive
from .media import Medium, MediumStats, Segment
from .profiles import TapeProfile


@dataclass
class LibraryStats:
    """Snapshot of library-wide counters for benchmark reports."""

    media: int
    drives: int
    exchanges: int
    seeks: int
    seek_distance_bytes: int
    bytes_read: int
    bytes_written: int
    time_exchanging_s: float
    time_seeking_s: float
    time_transferring_s: float

    @property
    def total_device_time_s(self) -> float:
        return self.time_exchanging_s + self.time_seeking_s + self.time_transferring_s


class TapeLibrary:
    """An automated tertiary-storage system with one robot and N drives.

    Args:
        profile: drive/media technology for the whole library.
        num_drives: number of read/write stations sharing the robot.
        clock: shared virtual clock; one is created if omitted.
        retain_payload: keep segment bytes on media (see :class:`Medium`).
    """

    def __init__(
        self,
        profile: TapeProfile,
        num_drives: int = 1,
        clock: Optional[SimClock] = None,
        retain_payload: bool = True,
    ) -> None:
        from .robot import Robot  # local import to avoid cycle in docs builds

        if num_drives < 1:
            raise ValueError("a library needs at least one drive")
        self.profile = profile
        self.clock = clock if clock is not None else SimClock()
        self.retain_payload = retain_payload
        self.drives: List[Drive] = [
            Drive(f"drive-{i}", profile, self.clock) for i in range(num_drives)
        ]
        self.robot = Robot("robot-0", profile, self.clock)
        self._media: Dict[str, Medium] = {}
        self._media_order: List[str] = []
        self._id_counter = itertools.count()
        #: global directory segment name -> medium id (one copy per segment)
        self._directory: Dict[str, str] = {}

    # -- media management ----------------------------------------------------

    def new_medium(self, medium_id: Optional[str] = None) -> Medium:
        """Register a fresh medium on the shelf and return it."""
        if medium_id is None:
            medium_id = f"tape-{next(self._id_counter):04d}"
        if medium_id in self._media:
            raise ValueError(f"medium id {medium_id!r} already registered")
        medium = Medium(medium_id, self.profile, retain_payload=self.retain_payload)
        self._media[medium_id] = medium
        self._media_order.append(medium_id)
        return medium

    def medium(self, medium_id: str) -> Medium:
        try:
            return self._media[medium_id]
        except KeyError:
            raise MediumNotFoundError(f"unknown medium {medium_id!r}") from None

    def media(self) -> List[Medium]:
        """All registered media in registration order."""
        return [self._media[m] for m in self._media_order]

    def allocate_medium(self, nbytes: int) -> Medium:
        """Medium with >= *nbytes* free, preferring the current fill target.

        Media are filled in registration order (the natural archive append
        pattern); a new medium is created when nothing fits.
        """
        for medium_id in self._media_order:
            medium = self._media[medium_id]
            if medium.fits(nbytes):
                return medium
        if nbytes > self.profile.media_capacity_bytes:
            raise MediumFullError(
                f"segment of {nbytes} B exceeds media capacity "
                f"{self.profile.media_capacity_bytes} B"
            )
        return self.new_medium()

    # -- mounting ------------------------------------------------------------

    def mounted_drive(self, medium_id: str) -> Optional[Drive]:
        """Drive currently holding *medium_id*, if any."""
        for drive in self.drives:
            if drive.medium is not None and drive.medium.medium_id == medium_id:
                return drive
        return None

    def mount(self, medium_id: str) -> Drive:
        """Ensure the medium is in a drive; returns that drive.

        A free drive is used when available, otherwise the least-recently
        used drive is recycled (its medium is exchanged by the robot).
        """
        medium = self.medium(medium_id)
        drive = self.mounted_drive(medium_id)
        if drive is not None:
            return drive
        free = next((d for d in self.drives if not d.loaded), None)
        target = free if free is not None else min(self.drives, key=lambda d: d.last_used)
        self.robot.mount(medium, target)
        return target

    def unmount_all(self) -> None:
        """Return every loaded medium to the shelf (end-of-batch cleanup)."""
        for drive in self.drives:
            if drive.loaded:
                self.robot.dismount(drive)

    # -- segment I/O -----------------------------------------------------------

    def write_segment(
        self,
        name: str,
        length: int,
        payload: Optional[bytes] = None,
        medium_id: Optional[str] = None,
    ) -> Tuple[str, Segment]:
        """Append a named segment; returns ``(medium_id, segment)``.

        When *medium_id* is omitted the library picks (or creates) a medium
        via :meth:`allocate_medium`.
        """
        if name in self._directory:
            raise ValueError(f"segment {name!r} already stored in library")
        medium = (
            self.medium(medium_id) if medium_id is not None else self.allocate_medium(length)
        )
        drive = self.mount(medium.medium_id)
        segment = drive.append_segment(name, length, payload)
        self._directory[name] = medium.medium_id
        return medium.medium_id, segment

    def read_segment(self, name: str, medium_id: Optional[str] = None) -> Optional[bytes]:
        """Mount, position and stream the named segment; payload if retained."""
        medium_id = medium_id or self.locate(name)
        drive = self.mount(medium_id)
        return drive.read_segment(name)

    def read_extent(self, medium_id: str, offset: int, length: int) -> None:
        """Stream a raw extent (used for whole-medium or multi-segment sweeps)."""
        drive = self.mount(medium_id)
        drive.read_extent(offset, length)

    def delete_segment(self, name: str) -> None:
        """Drop a segment from its medium's map and the directory."""
        medium_id = self.locate(name)
        self.medium(medium_id).delete(name)
        del self._directory[name]

    def locate(self, name: str) -> str:
        """Medium id holding segment *name*."""
        try:
            return self._directory[name]
        except KeyError:
            raise SegmentNotFoundError(f"segment {name!r} not in library") from None

    def has_segment(self, name: str) -> bool:
        return name in self._directory

    def segment(self, name: str) -> Tuple[str, Segment]:
        """``(medium_id, extent)`` of the named segment."""
        medium_id = self.locate(name)
        return medium_id, self.medium(medium_id).segment(name)

    # -- statistics ------------------------------------------------------------

    def stats(self) -> LibraryStats:
        """Aggregate robot and drive counters into one snapshot."""
        return LibraryStats(
            media=len(self._media),
            drives=len(self.drives),
            exchanges=self.robot.stats.exchanges,
            seeks=sum(d.stats.seeks for d in self.drives),
            seek_distance_bytes=sum(d.stats.seek_distance_bytes for d in self.drives),
            bytes_read=sum(d.stats.bytes_read for d in self.drives),
            bytes_written=sum(d.stats.bytes_written for d in self.drives),
            time_exchanging_s=self.robot.stats.time_s,
            time_seeking_s=sum(d.stats.time_seeking_s for d in self.drives),
            time_transferring_s=sum(d.stats.time_transferring_s for d in self.drives),
        )

    def media_stats(self) -> List[MediumStats]:
        return [MediumStats.of(m) for m in self.media()]
