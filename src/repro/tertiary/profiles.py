"""Device cost-model profiles for the tertiary-storage simulator.

The HEAVEN dissertation (Kapitel 1.1/2.2) characterises the storage
hierarchy with a handful of numbers that every experiment depends on:

* tape media-exchange time 12 s – 40 s (robot swap + load),
* mean tape access (position to the middle of the tape) 27 s – 95 s,
* disk random access 10**3 – 10**4 times faster than tape,
* tape transfer rate only about 2x slower than disk transfer rate,
* tape per-gigabyte cost far below disk — the reason tertiary storage
  remains the only practical store for hundreds of TB.

The profiles below encode those ranges as concrete, internally consistent
devices.  Seek time on tape is modelled linearly in the byte distance the
tape must wind: positioning from the physical beginning to the middle of the
medium takes exactly ``avg_seek_time_s``, matching the paper's definition of
mean access time for magnetic tapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB


@dataclass(frozen=True)
class TapeProfile:
    """Cost model of one removable-medium drive technology.

    Attributes:
        name: technology label, e.g. ``"DLT-7000"``.
        media_capacity_bytes: native capacity of one medium.
        exchange_time_s: robot time to swap a medium into a drive
            (unload old + fetch + insert new).
        load_time_s: drive-internal thread/load time after insertion.
        avg_seek_time_s: time to position from beginning to the middle of
            the medium (the paper's mean access time definition).
        transfer_rate_bps: sustained sequential transfer rate, bytes/second.
        rewind_before_unload: whether the drive must rewind to the physical
            beginning before the medium can be ejected (true for tape,
            false for optical platters).
        seekable: random-positioning capability; optical media seek in
            near-constant time instead of winding.
        stop_start_penalty_s: repositioning cost charged per discrete write
            operation.  Streaming drives cannot keep the tape moving when
            data arrives as many small, individually committed chunks: each
            chunk ends the stream, the drive overshoots, stops and backs up
            ("shoe-shining").  One large streamed segment pays this once;
            a tile-by-tile export pays it per tile — the physical effect
            behind the coupled-vs-TCT export gap (Kapitel 4.3).
        locate_overhead_s: constant component of every repositioning (servo
            sync + locate command), paid on top of the distance-linear wind
            whenever the head moves.  This is why fetching many small
            pieces loses against fewer large ones even when the pieces are
            near each other — the left arm of the super-tile size U-curve
            (E7).
    """

    name: str
    media_capacity_bytes: int
    exchange_time_s: float
    load_time_s: float
    avg_seek_time_s: float
    transfer_rate_bps: float
    rewind_before_unload: bool = True
    seekable: bool = False
    stop_start_penalty_s: float = 0.8
    locate_overhead_s: float = 1.2

    @property
    def wind_rate_bps(self) -> float:
        """Tape wind speed implied by the average-seek definition.

        Positioning across half the medium takes ``avg_seek_time_s``
        including the constant locate overhead, so the wind rate is
        ``(capacity / 2) / (avg_seek_time_s - locate_overhead_s)``.
        """
        wind_seconds = max(1e-6, self.avg_seek_time_s - self.locate_overhead_s)
        return (self.media_capacity_bytes / 2.0) / wind_seconds

    def seek_time(self, distance_bytes: int) -> float:
        """Time to move the head across *distance_bytes* of medium.

        Zero distance is free; any movement pays the constant locate
        overhead plus distance-linear winding (tape) or a constant access
        (optical).
        """
        if distance_bytes < 0:
            distance_bytes = -distance_bytes
        if distance_bytes == 0:
            return 0.0
        if self.seekable:
            # Optical: essentially constant-time positioning.
            return self.avg_seek_time_s
        return self.locate_overhead_s + distance_bytes / self.wind_rate_bps

    def transfer_time(self, nbytes: int) -> float:
        """Time to stream *nbytes* sequentially."""
        return nbytes / self.transfer_rate_bps

    def full_exchange_time(self) -> float:
        """Robot exchange plus drive load — cost of one media change."""
        return self.exchange_time_s + self.load_time_s


@dataclass(frozen=True)
class DiskProfile:
    """Cost model of secondary storage (disk arrays, staging areas).

    Disk access is modelled as one average positioning latency per request
    plus sequential transfer, which preserves the paper's two headline
    ratios: random access 10**3-10**4 times faster than tape, transfer rate
    about 2x faster than tape.
    """

    name: str
    capacity_bytes: int
    avg_access_time_s: float
    transfer_rate_bps: float

    def access_time(self) -> float:
        return self.avg_access_time_s

    def transfer_time(self, nbytes: int) -> float:
        return nbytes / self.transfer_rate_bps

    def io_time(self, nbytes: int) -> float:
        """One random access followed by a sequential transfer."""
        return self.avg_access_time_s + self.transfer_time(nbytes)


@dataclass(frozen=True)
class NetworkProfile:
    """Simple fixed-bandwidth network link (paper Kapitel 1.1 example)."""

    name: str
    bandwidth_bps: float
    latency_s: float = 0.05

    def transfer_time(self, nbytes: int) -> float:
        return self.latency_s + nbytes * 8.0 / self.bandwidth_bps


# --------------------------------------------------------------------------
# Concrete profiles.  Numbers sit inside the ranges quoted in the paper and
# are mutually consistent (tape transfer about half of disk transfer; tape
# random access >= 10**3 x disk random access).
# --------------------------------------------------------------------------

#: Fast DLT-class drive: 35 GB media, quick robot, mid-range seek.
DLT_7000 = TapeProfile(
    name="DLT-7000",
    media_capacity_bytes=35 * GB,
    exchange_time_s=12.0,
    load_time_s=8.0,
    avg_seek_time_s=45.0,
    transfer_rate_bps=15 * MB,
)

#: LTO-1 class drive: 100 GB media, slower robot, longer winds.
LTO_1 = TapeProfile(
    name="LTO-1",
    media_capacity_bytes=100 * GB,
    exchange_time_s=20.0,
    load_time_s=15.0,
    avg_seek_time_s=60.0,
    transfer_rate_bps=16 * MB,
)

#: Pessimistic archive drive at the slow end of the paper's ranges.
AIT_2 = TapeProfile(
    name="AIT-2",
    media_capacity_bytes=50 * GB,
    exchange_time_s=40.0,
    load_time_s=15.0,
    avg_seek_time_s=95.0,
    transfer_rate_bps=6 * MB,
)

#: Magneto-optical platter: small, seekable, no rewind on eject.
MO_5_2 = TapeProfile(
    name="MO-5.2GB",
    media_capacity_bytes=int(5.2 * GB),
    exchange_time_s=8.0,
    load_time_s=4.0,
    avg_seek_time_s=0.035,
    transfer_rate_bps=5 * MB,
    rewind_before_unload=False,
    seekable=True,
    stop_start_penalty_s=0.0,
    locate_overhead_s=0.0,
)

#: Staging/cache disk array: 30 MB/s, 6 ms access.  Random access is
#: (45 s / 6 ms) = 7500x faster than DLT-7000 — inside the paper's
#: 10**3-10**4 band; transfer is 2x the DLT rate.
DISK_ARRAY = DiskProfile(
    name="disk-array",
    capacity_bytes=2 * TB,
    avg_access_time_s=0.006,
    transfer_rate_bps=30 * MB,
)

#: The paper's example network: 8 Mbit/s asymmetric DSL.
DSL_8MBIT = NetworkProfile(name="adsl-8mbit", bandwidth_bps=8_000_000.0)

#: Registry used by benchmarks and the E1 environment table.
TAPE_PROFILES: Dict[str, TapeProfile] = {
    p.name: p for p in (DLT_7000, LTO_1, AIT_2, MO_5_2)
}


def scaled_profile(profile: TapeProfile, capacity_bytes: int) -> TapeProfile:
    """Return *profile* with a different media capacity, same mechanics.

    Useful for laptop-scale experiments: a smaller virtual medium keeps
    object counts manageable while the timing model (exchange, wind rate,
    transfer) stays identical, so relative results are unchanged.
    """
    scale = capacity_bytes / profile.media_capacity_bytes
    wind_seconds = max(1e-6, profile.avg_seek_time_s - profile.locate_overhead_s)
    return replace(
        profile,
        media_capacity_bytes=capacity_bytes,
        # Scale only the distance-linear wind component; the constant
        # locate overhead is a drive property, not a medium property.
        avg_seek_time_s=profile.locate_overhead_s + wind_seconds * scale,
    )


@dataclass(frozen=True)
class EnvironmentRow:
    """One row of the E1 test-environment characteristics table."""

    device: str
    capacity: str
    exchange_s: str
    avg_access_s: str
    transfer: str
    access_vs_disk: str


def environment_table(disk: DiskProfile = DISK_ARRAY) -> "list[EnvironmentRow]":
    """Build the E1 table comparing every tape profile against disk."""
    rows = []
    for profile in TAPE_PROFILES.values():
        ratio = profile.avg_seek_time_s / disk.avg_access_time_s
        rows.append(
            EnvironmentRow(
                device=profile.name,
                capacity=f"{profile.media_capacity_bytes / GB:.1f} GB",
                exchange_s=f"{profile.full_exchange_time():.0f}",
                avg_access_s=f"{profile.avg_seek_time_s:g}",
                transfer=f"{profile.transfer_rate_bps / MB:.0f} MB/s",
                access_vs_disk=f"{ratio:,.0f}x",
            )
        )
    rows.append(
        EnvironmentRow(
            device=disk.name,
            capacity=f"{disk.capacity_bytes / TB:.1f} TB",
            exchange_s="-",
            avg_access_s=f"{disk.avg_access_time_s:g}",
            transfer=f"{disk.transfer_rate_bps / MB:.0f} MB/s",
            access_vs_disk="1x",
        )
    )
    return rows
