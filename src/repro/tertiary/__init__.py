"""Tertiary-storage simulator: clock, media, drives, robot, library, HSM.

This package is the substrate the HEAVEN paper assumes as hardware (robotic
tape libraries and a commercial HSM); we simulate it with deterministic cost
models parameterised from the numbers given in the dissertation (media
exchange 12-40 s, mean tape access 27-95 s, tape transfer about half the
disk rate, disk random access 10**3-10**4 times faster).
"""

from .clock import Event, EventLog, SimClock, Stopwatch, Timeline
from .disk import DiskDevice, DiskStats
from .drive import Drive, DriveStats
from .hsm import HSMFile, HSMStats, HSMSystem
from .library import LibraryStats, RecoveryStats, TapeLibrary
from .media import BadSpot, Medium, MediumStats, Segment
from .profiles import (
    AIT_2,
    DISK_ARRAY,
    DLT_7000,
    DSL_8MBIT,
    GB,
    KB,
    LTO_1,
    MB,
    MO_5_2,
    TB,
    TAPE_PROFILES,
    DiskProfile,
    EnvironmentRow,
    NetworkProfile,
    TapeProfile,
    environment_table,
    scaled_profile,
)
from .robot import Robot, RobotStats

__all__ = [
    "AIT_2",
    "BadSpot",
    "DISK_ARRAY",
    "DLT_7000",
    "DSL_8MBIT",
    "DiskDevice",
    "DiskProfile",
    "DiskStats",
    "Drive",
    "DriveStats",
    "EnvironmentRow",
    "Event",
    "EventLog",
    "GB",
    "HSMFile",
    "HSMStats",
    "HSMSystem",
    "KB",
    "LTO_1",
    "LibraryStats",
    "MB",
    "MO_5_2",
    "Medium",
    "MediumStats",
    "NetworkProfile",
    "RecoveryStats",
    "Robot",
    "RobotStats",
    "Segment",
    "SimClock",
    "Stopwatch",
    "TAPE_PROFILES",
    "TB",
    "TapeLibrary",
    "TapeProfile",
    "Timeline",
    "environment_table",
    "scaled_profile",
]
