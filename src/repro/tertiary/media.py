"""Removable media: allocation map and payload store of one tape/platter.

A :class:`Medium` is a linear byte space.  Named *segments* (HEAVEN writes
one segment per super-tile, the HSM one per file) are appended sequentially —
exactly how tape drives behave — and remembered in an extent map so later
reads can be costed by their physical position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..errors import MediumFullError, SegmentNotFoundError
from .profiles import TapeProfile


@dataclass(frozen=True)
class Segment:
    """One named extent on a medium."""

    name: str
    offset: int
    length: int

    @property
    def end(self) -> int:
        """First byte after the segment."""
        return self.offset + self.length


@dataclass
class BadSpot:
    """A damaged byte range on a medium.

    Reads overlapping the spot raise :class:`~repro.errors.MediaFaultError`
    (via the fault plan's ``media`` hook).  *Transient* spots heal after
    the first hit — a retry succeeds, modelling a recoverable soft error;
    permanent spots keep failing until the medium is replaced.
    """

    offset: int
    length: int
    transient: bool = True

    @property
    def end(self) -> int:
        return self.offset + self.length

    def overlaps(self, offset: int, length: int) -> bool:
        return offset < self.end and self.offset < offset + length


class Medium:
    """One removable medium (tape cartridge or optical platter).

    Data is append-only: segments are written at ``write_position`` which
    only moves forward.  Deleting a segment frees its name but, as on real
    tape, does not reclaim space until the medium is reformatted — HEAVEN's
    re-import path relies on this behaviour.

    Args:
        medium_id: unique identifier within the library.
        profile: drive technology whose capacity bounds this medium.
        retain_payload: keep actual segment bytes (needed for end-to-end
            data fidelity tests).  Large virtual experiments switch this
            off and track sizes only.
    """

    def __init__(
        self,
        medium_id: str,
        profile: TapeProfile,
        retain_payload: bool = True,
    ) -> None:
        self.medium_id = medium_id
        self.profile = profile
        self.capacity = profile.media_capacity_bytes
        self.retain_payload = retain_payload
        self.write_position = 0
        self.mount_count = 0
        self._segments: Dict[str, Segment] = {}
        self._order: List[str] = []
        self._payloads: Dict[str, bytes] = {}
        self._bad_spots: List[BadSpot] = []

    # -- capacity ----------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes consumed on the medium (including deleted segments)."""
        return self.write_position

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.write_position

    def fits(self, nbytes: int) -> bool:
        return nbytes <= self.free_bytes

    # -- segment map -------------------------------------------------------

    def append(self, name: str, length: int, payload: Optional[bytes] = None) -> Segment:
        """Append a new segment of *length* bytes; returns its extent.

        Raises:
            MediumFullError: the segment does not fit.
            ValueError: the segment name is already present, or the payload
                length disagrees with *length*.
        """
        if name in self._segments:
            raise ValueError(f"segment {name!r} already on medium {self.medium_id}")
        if payload is not None and len(payload) != length:
            raise ValueError(
                f"payload length {len(payload)} != declared length {length}"
            )
        if not self.fits(length):
            raise MediumFullError(
                f"medium {self.medium_id}: segment {name!r} of {length} B does not "
                f"fit in {self.free_bytes} B free"
            )
        segment = Segment(name=name, offset=self.write_position, length=length)
        self._segments[name] = segment
        self._order.append(name)
        self.write_position += length
        if payload is not None and self.retain_payload:
            self._payloads[name] = payload
        return segment

    def segment(self, name: str) -> Segment:
        """Look up a segment by name."""
        try:
            return self._segments[name]
        except KeyError:
            raise SegmentNotFoundError(
                f"segment {name!r} not on medium {self.medium_id}"
            ) from None

    def has_segment(self, name: str) -> bool:
        return name in self._segments

    def delete(self, name: str) -> Segment:
        """Drop a segment from the map (space is not reclaimed)."""
        segment = self.segment(name)
        del self._segments[name]
        self._order.remove(name)
        self._payloads.pop(name, None)
        return segment

    def payload(self, name: str) -> Optional[bytes]:
        """Stored bytes of the segment, or None when payloads are dropped."""
        self.segment(name)  # raise if unknown
        return self._payloads.get(name)

    # -- media health --------------------------------------------------------

    def add_bad_spot(self, offset: int, length: int, transient: bool = True) -> BadSpot:
        """Register a damaged byte range (fault-injection hook target)."""
        if length < 1 or offset < 0 or offset + length > self.capacity:
            raise ValueError(
                f"bad spot [{offset}, {offset + length}) outside medium "
                f"{self.medium_id} of {self.capacity} B"
            )
        spot = BadSpot(offset=offset, length=length, transient=transient)
        self._bad_spots.append(spot)
        return spot

    def bad_spot_in(self, offset: int, length: int) -> Optional[BadSpot]:
        """First registered bad spot overlapping ``[offset, offset+length)``."""
        for spot in self._bad_spots:
            if spot.overlaps(offset, length):
                return spot
        return None

    def clear_bad_spot(self, spot: BadSpot) -> None:
        """Heal one bad spot (no-op if it is already gone)."""
        try:
            self._bad_spots.remove(spot)
        except ValueError:
            pass

    @property
    def bad_spots(self) -> List[BadSpot]:
        return list(self._bad_spots)

    def segments(self) -> List[Segment]:
        """All live segments in physical (append) order."""
        return [self._segments[n] for n in self._order]

    def __iter__(self) -> Iterator[Segment]:
        return iter(self.segments())

    def __len__(self) -> int:
        return len(self._segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Medium({self.medium_id!r}, used={self.used_bytes}/{self.capacity}, "
            f"segments={len(self)})"
        )


@dataclass
class MediumStats:
    """Aggregated usage statistics for one medium (for reports)."""

    medium_id: str
    segments: int
    used_bytes: int
    capacity: int
    mount_count: int

    @classmethod
    def of(cls, medium: Medium) -> "MediumStats":
        return cls(
            medium_id=medium.medium_id,
            segments=len(medium),
            used_bytes=medium.used_bytes,
            capacity=medium.capacity,
            mount_count=medium.mount_count,
        )

    @property
    def fill_ratio(self) -> float:
        return self.used_bytes / self.capacity if self.capacity else 0.0
