"""Robot arm of the automated tape library.

The robot moves media between shelf slots and drives.  Its exchange time
(12 s - 40 s per the paper) usually dominates any workload that touches many
media, which is why HEAVEN's inter-super-tile clustering and query scheduling
both target *exchange count* first.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StorageError
from ..faults import NO_FAULTS
from .clock import SimClock
from .drive import Drive
from .media import Medium
from .profiles import TapeProfile


@dataclass
class RobotStats:
    """Cumulative robot activity."""

    exchanges: int = 0
    fetches: int = 0
    stows: int = 0
    time_s: float = 0.0
    #: seconds drives spent waiting for the arm (parallel batches only)
    wait_s: float = 0.0


class Robot:
    """Single accessor arm shared by all drives of a library.

    The arm serves one exchange at a time: :attr:`free_at` records when the
    current exchange finishes.  On the single global clock that is always in
    the past, so serial workloads never wait; under per-drive timelines
    (parallel execution) a drive whose mount arrives while the arm serves
    another drive is charged the difference as a ``robot-wait`` event.
    """

    def __init__(
        self,
        robot_id: str,
        profile: TapeProfile,
        clock: SimClock,
        faults=NO_FAULTS,
    ) -> None:
        self.robot_id = robot_id
        self.profile = profile
        self.clock = clock
        self.faults = faults if faults is not None else NO_FAULTS
        self.stats = RobotStats()
        #: virtual time at which the arm finishes its current exchange
        self.free_at = 0.0

    def mount(self, medium: Medium, drive: Drive) -> None:
        """Fetch *medium* from its slot and load it into *drive*.

        If the drive holds another medium it is unloaded (with rewind, if
        the technology requires it) and stowed first; the combined action
        counts as one media exchange.
        """
        if drive.medium is medium:
            return
        self._await_arm(f"mount {medium.medium_id} -> {drive.drive_id}")
        if drive.loaded:
            self._stow(drive)
        self._fetch(medium, drive)
        self.stats.exchanges += 1

    def dismount(self, drive: Drive) -> Medium:
        """Unload the drive and return its medium to the shelf."""
        if not drive.loaded:
            raise StorageError(f"drive {drive.drive_id} is empty; nothing to dismount")
        self._await_arm(f"dismount {drive.drive_id}")
        return self._stow(drive)

    # -- internals ---------------------------------------------------------

    def _await_arm(self, detail: str) -> float:
        """Block until the arm is free; returns seconds waited.

        The wait is charged against the caller's active timeline (the drive
        asking for the exchange), never the arm itself — the arm is busy
        doing another drive's exchange during that span.  On the single
        global clock no wait can exist: everything that busied the arm also
        advanced the clock (a reset clock would otherwise leave a stale
        future horizon, so it is clamped here).
        """
        timeline = self.clock.active_timeline
        now = self.clock.now
        if timeline is None:
            if self.free_at > now:
                self.free_at = now
            return 0.0
        wait = self.free_at - now
        if wait <= 0:
            return 0.0
        self.clock.charge(wait, "robot-wait", self.robot_id, detail=detail)
        self.stats.wait_s += wait
        timeline.wait_seconds += wait
        return wait

    def _fetch(self, medium: Medium, drive: Drive) -> None:
        # Fault hook: a robot jam (or an offline library) aborts the fetch
        # before any exchange time is charged; a preceding stow stands.
        self.faults.on_exchange(self.robot_id, medium.medium_id)
        cost = self.profile.exchange_time_s
        self.clock.charge(
            cost,
            "exchange",
            self.robot_id,
            detail=f"fetch {medium.medium_id} -> {drive.drive_id}",
        )
        self.stats.fetches += 1
        self.stats.time_s += cost
        # The arm is released once the cartridge is in the drive's mouth;
        # the drive threads (loads) it on its own time.
        self.free_at = self.clock.now
        drive.load(medium)

    def _stow(self, drive: Drive) -> Medium:
        medium = drive.unload()
        # Stowing happens while the next fetch is prepared; we charge a
        # fraction of the exchange time for the return trip to the shelf.
        cost = self.profile.exchange_time_s * 0.5
        self.clock.charge(
            cost,
            "exchange",
            self.robot_id,
            detail=f"stow {medium.medium_id} <- {drive.drive_id}",
        )
        self.stats.stows += 1
        self.stats.time_s += cost
        self.free_at = self.clock.now
        return medium
