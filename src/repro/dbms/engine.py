"""The base relational engine: catalog, DDL/DML, transactions, recovery.

Plays the role Oracle/IBM DB2 play under RasDaMan in the paper's reference
architecture (Abbildung 1.3): storage and transaction manager for the array
DBMS's catalogs and tile BLOBs.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import SchemaError, TransactionError
from ..tertiary.clock import SimClock
from ..tertiary.profiles import DISK_ARRAY, DiskProfile
from .blob import BlobStore
from .table import Column, Predicate, Row, Schema, Table
from .transaction import Transaction, TxnState
from .types import ColumnType
from .wal import LogKind, WriteAheadLog


class Database:
    """A small ACID relational database with an attached BLOB store.

    All DML goes through an explicit or implicit transaction; rollback
    restores tables and BLOBs.  Reads are always allowed (single-writer,
    read-committed semantics — sufficient for the storage-manager role).
    """

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        disk_profile: DiskProfile = DISK_ARRAY,
        retain_payload: bool = True,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.wal = WriteAheadLog()
        self.blobs = BlobStore(self.clock, disk_profile, retain_payload=retain_payload)
        self._tables: Dict[str, Table] = {}
        self._txn_counter = itertools.count(1)
        self._current: Optional[Transaction] = None
        #: lifetime transaction-outcome counters (observability metrics)
        self.txns_committed = 0
        self.txns_rolled_back = 0

    # -- DDL -----------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: List[Column],
        primary_key: Optional[str] = None,
    ) -> Table:
        if name in self._tables:
            raise SchemaError(f"table {name!r} already exists")
        table = Table(name, Schema(columns, primary_key=primary_key))
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise SchemaError(f"table {name!r} does not exist")
        del self._tables[name]

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"table {name!r} does not exist") from None

    def tables(self) -> List[str]:
        return sorted(self._tables)

    # -- transactions -----------------------------------------------------------

    def begin(self) -> Transaction:
        """Start an explicit transaction (single writer at a time)."""
        if self._current is not None and self._current.active:
            raise TransactionError("another transaction is already active")
        txn = Transaction(next(self._txn_counter), self.wal)
        self._current = txn
        return txn

    def commit(self) -> None:
        self._require_txn().commit()
        self._current = None
        self.txns_committed += 1

    def rollback(self) -> None:
        self._require_txn().rollback()
        self._current = None
        self.txns_rolled_back += 1

    @property
    def in_transaction(self) -> bool:
        return self._current is not None and self._current.active

    def transaction(self) -> "_TransactionContext":
        """Context manager: commit on success, rollback on exception."""
        return _TransactionContext(self)

    def _require_txn(self) -> Transaction:
        if self._current is None or not self._current.active:
            raise TransactionError("no active transaction")
        return self._current

    def _txn_or_autocommit(self) -> Tuple[Transaction, bool]:
        """Active transaction, or a fresh one to auto-commit."""
        if self.in_transaction:
            assert self._current is not None
            return self._current, False
        return self.begin(), True

    # -- DML ---------------------------------------------------------------------

    def insert(self, table_name: str, values: Row) -> int:
        """Insert one row; returns rowid.  Autocommits outside a txn."""
        table = self.table(table_name)
        txn, auto = self._txn_or_autocommit()
        try:
            rowid = table.insert(values)
            txn.record_insert(table, rowid, table.get(rowid))
        except Exception:
            if auto:
                self.rollback()
            raise
        if auto:
            self.commit()
        return rowid

    def update(self, table_name: str, rowid: int, changes: Row) -> None:
        table = self.table(table_name)
        txn, auto = self._txn_or_autocommit()
        try:
            before = table.update(rowid, changes)
            txn.record_update(table, rowid, before, table.get(rowid))
        except Exception:
            if auto:
                self.rollback()
            raise
        if auto:
            self.commit()

    def delete_rows(self, table_name: str, predicate: Predicate) -> int:
        """Delete all rows matching *predicate*; returns count."""
        table = self.table(table_name)
        txn, auto = self._txn_or_autocommit()
        count = 0
        try:
            for rowid, _row in list(table.scan(predicate)):
                before = table.delete(rowid)
                txn.record_delete(table, rowid, before)
                count += 1
        except Exception:
            if auto:
                self.rollback()
            raise
        if auto:
            self.commit()
        return count

    # -- BLOB DML (transactional) ---------------------------------------------------

    def put_blob(self, payload: Optional[bytes] = None, size: Optional[int] = None) -> int:
        """Store a BLOB under the current (or an autocommit) transaction."""
        txn, auto = self._txn_or_autocommit()
        try:
            oid = self.blobs.put(payload, size)
            txn.record_custom(
                lambda: self.blobs.delete(oid), f"undo put blob#{oid}"
            )
        except Exception:
            if auto:
                self.rollback()
            raise
        if auto:
            self.commit()
        return oid

    def delete_blob(self, oid: int) -> None:
        txn, auto = self._txn_or_autocommit()
        try:
            payload = self.blobs.peek(oid)
            size = self.blobs.size(oid)
            self.blobs.delete(oid)
            txn.record_custom(
                lambda: self.blobs.restore(oid, size, payload),
                f"undo delete blob#{oid}",
            )
        except Exception:
            if auto:
                self.rollback()
            raise
        if auto:
            self.commit()

    # -- queries ------------------------------------------------------------------------

    def select(
        self,
        table_name: str,
        predicate: Optional[Predicate] = None,
        columns: Optional[List[str]] = None,
        order_by: Optional[str] = None,
    ) -> List[Row]:
        """Filtered projection over one table.

        Equality predicates on indexed columns should use
        :meth:`Table.find_by` directly; this convenience path always scans.
        """
        table = self.table(table_name)
        rows = [row for _rid, row in table.scan(predicate)]
        if order_by is not None:
            table.schema.column(order_by)
            rows.sort(key=lambda r: r[order_by])
        if columns is not None:
            for column in columns:
                table.schema.column(column)
            rows = [{c: r[c] for c in columns} for r in rows]
        return rows


class _TransactionContext:
    """``with db.transaction():`` — commit on success, rollback on error."""

    def __init__(self, db: Database) -> None:
        self._db = db

    def __enter__(self) -> Transaction:
        return self._db.begin()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if self._db.in_transaction:
            if exc_type is None:
                self._db.commit()
            else:
                self._db.rollback()
        return False
