"""Write-ahead log giving the base DBMS durability bookkeeping.

The log records logical operations (insert/update/delete/commit/abort).
Recovery replays committed transactions in order — enough ACID machinery to
support HEAVEN's export/delete/re-import paths, where an aborted export must
leave the catalogs untouched.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


class LogKind(enum.Enum):
    BEGIN = "begin"
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"
    COMMIT = "commit"
    ABORT = "abort"
    CHECKPOINT = "checkpoint"


@dataclass(frozen=True)
class LogRecord:
    """One WAL entry."""

    lsn: int
    txn_id: int
    kind: LogKind
    table: Optional[str] = None
    rowid: Optional[int] = None
    before: Optional[Dict[str, Any]] = None
    after: Optional[Dict[str, Any]] = None


#: record kinds whose append forces a durable log sync
_SYNC_KINDS = frozenset({LogKind.COMMIT, LogKind.CHECKPOINT})


class WriteAheadLog:
    """Append-only in-memory log with monotonically increasing LSNs.

    Keeps lifetime counters (:attr:`appends`, :attr:`syncs`) that survive
    :meth:`truncate`, feeding the ``repro_wal_*`` observability metrics.
    """

    def __init__(self) -> None:
        self._records: List[LogRecord] = []
        self._lsn = itertools.count(1)
        #: records ever appended (not reset by truncate)
        self.appends = 0
        #: appends that would force a durable sync (commit/checkpoint)
        self.syncs = 0

    def append(
        self,
        txn_id: int,
        kind: LogKind,
        table: Optional[str] = None,
        rowid: Optional[int] = None,
        before: Optional[Dict[str, Any]] = None,
        after: Optional[Dict[str, Any]] = None,
    ) -> LogRecord:
        record = LogRecord(
            lsn=next(self._lsn),
            txn_id=txn_id,
            kind=kind,
            table=table,
            rowid=rowid,
            before=dict(before) if before is not None else None,
            after=dict(after) if after is not None else None,
        )
        self._records.append(record)
        self.appends += 1
        if kind in _SYNC_KINDS:
            self.syncs += 1
        return record

    def records(self) -> List[LogRecord]:
        return list(self._records)

    def records_for(self, txn_id: int) -> List[LogRecord]:
        return [r for r in self._records if r.txn_id == txn_id]

    def committed_txns(self) -> List[int]:
        """Transaction ids with a COMMIT record, in commit order."""
        return [r.txn_id for r in self._records if r.kind is LogKind.COMMIT]

    def truncate(self) -> int:
        """Checkpoint: drop all records; returns how many were dropped."""
        dropped = len(self._records)
        self._records.clear()
        return dropped

    def __len__(self) -> int:
        return len(self._records)
