"""Base relational DBMS substrate (the Oracle/DB2 role under RasDaMan).

Provides typed heap tables with indexes, WAL-backed ACID transactions and a
disk-costed BLOB store — everything the array DBMS layer needs from its
storage and transaction manager.
"""

from .blob import BlobInfo, BlobStore
from .engine import Database
from .index import OrderedIndex
from .table import Column, Predicate, Row, Schema, Table
from .transaction import Transaction, TxnState, UndoRecord
from .types import ColumnType, coerce
from .wal import LogKind, LogRecord, WriteAheadLog

__all__ = [
    "BlobInfo",
    "BlobStore",
    "Column",
    "ColumnType",
    "Database",
    "LogKind",
    "LogRecord",
    "OrderedIndex",
    "Predicate",
    "Row",
    "Schema",
    "Table",
    "Transaction",
    "TxnState",
    "UndoRecord",
    "WriteAheadLog",
    "coerce",
]
