"""BLOB store of the base DBMS.

RasDaMan persists every tile as one BLOB in the underlying RDBMS; this store
reproduces that contract: oid-addressed byte strings whose reads/writes are
charged to a disk device, so the coupled export path (tile-by-tile through
the base DBMS) costs what it costs in the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import BlobNotFoundError
from ..tertiary.clock import SimClock
from ..tertiary.disk import DiskDevice
from ..tertiary.profiles import DISK_ARRAY, DiskProfile


@dataclass
class BlobInfo:
    """Metadata of one stored BLOB."""

    oid: int
    size: int


class BlobStore:
    """Disk-backed BLOB container with size-only or payload storage.

    Args:
        clock: shared simulator clock for I/O costing.
        profile: disk the store lives on.
        retain_payload: keep actual bytes (switch off for huge virtual runs).
    """

    def __init__(
        self,
        clock: SimClock,
        profile: DiskProfile = DISK_ARRAY,
        retain_payload: bool = True,
    ) -> None:
        self.disk = DiskDevice("dbms-blobs", profile, clock)
        self.retain_payload = retain_payload
        self._sizes: Dict[int, int] = {}
        self._payloads: Dict[int, bytes] = {}
        self._oid_counter = itertools.count(1)

    def __len__(self) -> int:
        return len(self._sizes)

    def __contains__(self, oid: int) -> bool:
        return oid in self._sizes

    @property
    def total_bytes(self) -> int:
        return sum(self._sizes.values())

    def put(self, payload: Optional[bytes] = None, size: Optional[int] = None) -> int:
        """Store a new BLOB; returns its oid.

        Either *payload* (authoritative size) or a declared *size* must be
        given; the write is charged to the disk.
        """
        if payload is None and size is None:
            raise ValueError("put() needs payload bytes or a declared size")
        if payload is not None:
            size = len(payload)
        assert size is not None
        oid = next(self._oid_counter)
        self.disk.write(size, detail=f"blob#{oid}")
        self.disk.reserve(size)
        self._sizes[oid] = size
        if payload is not None and self.retain_payload:
            self._payloads[oid] = payload
        return oid

    def get(self, oid: int) -> Optional[bytes]:
        """Read a BLOB (charged); returns bytes when retained, else None."""
        size = self._require(oid)
        self.disk.read(size, detail=f"blob#{oid}")
        return self._payloads.get(oid)

    def size(self, oid: int) -> int:
        """Size in bytes without touching the disk (catalog metadata)."""
        return self._require(oid)

    def delete(self, oid: int) -> int:
        """Remove a BLOB; returns its size."""
        size = self._require(oid)
        self.disk.release(size)
        del self._sizes[oid]
        self._payloads.pop(oid, None)
        return size

    def restore(self, oid: int, size: int, payload: Optional[bytes]) -> None:
        """Undo helper: bring a deleted BLOB back under its old oid."""
        if oid in self._sizes:
            raise ValueError(f"blob oid {oid} already present")
        self.disk.reserve(size)
        self._sizes[oid] = size
        if payload is not None and self.retain_payload:
            self._payloads[oid] = payload

    def peek(self, oid: int) -> Optional[bytes]:
        """Payload without charging I/O (for undo capture)."""
        self._require(oid)
        return self._payloads.get(oid)

    def _require(self, oid: int) -> int:
        try:
            return self._sizes[oid]
        except KeyError:
            raise BlobNotFoundError(f"blob oid {oid} not found") from None
