"""Ordered secondary index used by the base DBMS.

A thin sorted-list index (bisect-based) standing in for the B-tree of a real
RDBMS: logarithmic point lookup, ordered range scans, duplicate keys allowed.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple


class OrderedIndex:
    """Maps comparable keys to sets of row ids, kept in key order."""

    def __init__(self, name: str, unique: bool = False) -> None:
        self.name = name
        self.unique = unique
        self._keys: List[Any] = []
        self._rowids: List[int] = []

    def __len__(self) -> int:
        return len(self._keys)

    def insert(self, key: Any, rowid: int) -> None:
        """Add an entry; duplicate keys are legal unless the index is unique."""
        position = bisect.bisect_left(self._keys, key)
        if self.unique and position < len(self._keys) and self._keys[position] == key:
            raise KeyError(f"index {self.name}: duplicate key {key!r}")
        self._keys.insert(position, key)
        self._rowids.insert(position, rowid)

    def remove(self, key: Any, rowid: int) -> None:
        """Remove exactly one (key, rowid) entry."""
        position = bisect.bisect_left(self._keys, key)
        while position < len(self._keys) and self._keys[position] == key:
            if self._rowids[position] == rowid:
                del self._keys[position]
                del self._rowids[position]
                return
            position += 1
        raise KeyError(f"index {self.name}: entry ({key!r}, {rowid}) not found")

    def lookup(self, key: Any) -> List[int]:
        """Row ids with exactly this key, in insertion-position order."""
        lo = bisect.bisect_left(self._keys, key)
        hi = bisect.bisect_right(self._keys, key)
        return self._rowids[lo:hi]

    def range(
        self,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[Tuple[Any, int]]:
        """Yield (key, rowid) pairs with low <= key <= high in key order."""
        if low is None:
            lo = 0
        elif include_low:
            lo = bisect.bisect_left(self._keys, low)
        else:
            lo = bisect.bisect_right(self._keys, low)
        if high is None:
            hi = len(self._keys)
        elif include_high:
            hi = bisect.bisect_right(self._keys, high)
        else:
            hi = bisect.bisect_left(self._keys, high)
        for position in range(lo, hi):
            yield self._keys[position], self._rowids[position]

    def min_key(self) -> Optional[Any]:
        return self._keys[0] if self._keys else None

    def max_key(self) -> Optional[Any]:
        return self._keys[-1] if self._keys else None
