"""Column types of the base relational DBMS.

The array DBMS uses the base RDBMS the way RasDaMan uses Oracle/DB2: a
handful of catalog tables plus a BLOB store.  The type system is therefore
small but strictly enforced — silent coercion bugs in catalogs are exactly
what a storage manager cannot afford.
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from ..errors import SchemaError


class ColumnType(enum.Enum):
    """Supported column types, mapped to Python representations."""

    INTEGER = "integer"
    REAL = "real"
    TEXT = "text"
    BOOLEAN = "boolean"
    BYTES = "bytes"

    @property
    def python_type(self) -> type:
        return _PYTHON_TYPES[self]


_PYTHON_TYPES = {
    ColumnType.INTEGER: int,
    ColumnType.REAL: float,
    ColumnType.TEXT: str,
    ColumnType.BOOLEAN: bool,
    ColumnType.BYTES: bytes,
}


def coerce(value: Any, column_type: ColumnType, column: str) -> Optional[Any]:
    """Validate *value* against *column_type*; returns the stored form.

    ``None`` passes through (nullability is checked by the table layer).
    Integers are accepted for REAL columns (widening); everything else must
    match exactly — no string-to-number guessing.

    Raises:
        SchemaError: the value does not conform to the column type.
    """
    if value is None:
        return None
    expected = column_type.python_type
    if column_type is ColumnType.REAL and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    if column_type is ColumnType.INTEGER and isinstance(value, bool):
        raise SchemaError(f"column {column!r}: boolean given for INTEGER")
    if isinstance(value, expected):
        return value
    raise SchemaError(
        f"column {column!r}: expected {column_type.value}, got "
        f"{type(value).__name__} ({value!r})"
    )
