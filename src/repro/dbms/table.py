"""Heap tables with schemas, constraints and secondary indexes."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ConstraintError, SchemaError
from .index import OrderedIndex
from .types import ColumnType, coerce

Row = Dict[str, Any]
Predicate = Callable[[Row], bool]


@dataclass(frozen=True)
class Column:
    """One column definition."""

    name: str
    type: ColumnType
    nullable: bool = True


class Schema:
    """Ordered set of columns plus an optional primary-key column."""

    def __init__(self, columns: Sequence[Column], primary_key: Optional[str] = None) -> None:
        if not columns:
            raise SchemaError("a table needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        if primary_key is not None and primary_key not in names:
            raise SchemaError(f"primary key {primary_key!r} is not a column")
        self.columns: Tuple[Column, ...] = tuple(columns)
        self.primary_key = primary_key
        self._by_name = {c.name: c for c in columns}

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}") from None

    def names(self) -> List[str]:
        return [c.name for c in self.columns]

    def validate(self, values: Row) -> Row:
        """Check and coerce a full row dict; returns the stored form."""
        unknown = set(values) - set(self._by_name)
        if unknown:
            raise SchemaError(f"unknown columns {sorted(unknown)}")
        stored: Row = {}
        for column in self.columns:
            value = coerce(values.get(column.name), column.type, column.name)
            if value is None and not column.nullable:
                raise ConstraintError(f"column {column.name!r} is NOT NULL")
            if value is None and column.name == self.primary_key:
                raise ConstraintError(f"primary key {column.name!r} must not be NULL")
            stored[column.name] = value
        return stored


class Table:
    """A heap of rows with a primary-key index and secondary indexes.

    Rows are stored by surrogate rowid; all mutation goes through methods so
    indexes stay consistent and the transaction layer can capture undo
    records.
    """

    def __init__(self, name: str, schema: Schema) -> None:
        self.name = name
        self.schema = schema
        self._rows: Dict[int, Row] = {}
        self._rowid_counter = itertools.count(1)
        self._indexes: Dict[str, OrderedIndex] = {}
        if schema.primary_key is not None:
            self.create_index(schema.primary_key, unique=True)

    # -- indexes -------------------------------------------------------------

    def create_index(self, column: str, unique: bool = False) -> OrderedIndex:
        """Create (and backfill) an index on *column*."""
        self.schema.column(column)
        if column in self._indexes:
            raise SchemaError(f"index on {self.name}.{column} already exists")
        index = OrderedIndex(f"{self.name}.{column}", unique=unique)
        for rowid, row in self._rows.items():
            index.insert(row[column], rowid)
        self._indexes[column] = index
        return index

    def index_on(self, column: str) -> Optional[OrderedIndex]:
        return self._indexes.get(column)

    # -- mutation --------------------------------------------------------------

    def insert(self, values: Row) -> int:
        """Insert a row; returns its rowid."""
        row = self.schema.validate(values)
        self._check_unique(row)
        rowid = next(self._rowid_counter)
        self._rows[rowid] = row
        for column, index in self._indexes.items():
            index.insert(row[column], rowid)
        return rowid

    def update(self, rowid: int, changes: Row) -> Row:
        """Apply *changes* to one row; returns the previous row state."""
        old = self._require(rowid)
        merged = dict(old)
        merged.update(changes)
        new = self.schema.validate(merged)
        pk = self.schema.primary_key
        if pk is not None and new[pk] != old[pk]:
            self._check_unique(new)
        for column, index in self._indexes.items():
            if new[column] != old[column]:
                index.remove(old[column], rowid)
                index.insert(new[column], rowid)
        self._rows[rowid] = new
        return old

    def delete(self, rowid: int) -> Row:
        """Remove one row; returns it (for undo)."""
        row = self._require(rowid)
        for column, index in self._indexes.items():
            index.remove(row[column], rowid)
        del self._rows[rowid]
        return row

    def restore(self, rowid: int, row: Row) -> None:
        """Re-insert a previously deleted row under its old rowid (undo)."""
        if rowid in self._rows:
            raise ConstraintError(f"rowid {rowid} already present in {self.name}")
        self._rows[rowid] = dict(row)
        for column, index in self._indexes.items():
            index.insert(row[column], rowid)

    # -- reads -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def get(self, rowid: int) -> Row:
        return dict(self._require(rowid))

    def rowids(self) -> List[int]:
        return list(self._rows)

    def scan(self, predicate: Optional[Predicate] = None) -> Iterator[Tuple[int, Row]]:
        """Full scan yielding (rowid, row-copy), optionally filtered."""
        for rowid, row in list(self._rows.items()):
            if predicate is None or predicate(row):
                yield rowid, dict(row)

    def find_by(self, column: str, value: Any) -> List[Tuple[int, Row]]:
        """Equality lookup, via index when one exists."""
        index = self._indexes.get(column)
        if index is not None:
            return [(rowid, dict(self._rows[rowid])) for rowid in index.lookup(value)]
        return [(rid, row) for rid, row in self.scan(lambda r: r[column] == value)]

    def find_pk(self, value: Any) -> Optional[Tuple[int, Row]]:
        """Primary-key lookup; None when absent."""
        pk = self.schema.primary_key
        if pk is None:
            raise SchemaError(f"table {self.name} has no primary key")
        matches = self.find_by(pk, value)
        return matches[0] if matches else None

    # -- internals ---------------------------------------------------------------

    def _require(self, rowid: int) -> Row:
        try:
            return self._rows[rowid]
        except KeyError:
            raise ConstraintError(f"rowid {rowid} not in table {self.name}") from None

    def _check_unique(self, row: Row) -> None:
        pk = self.schema.primary_key
        if pk is None:
            return
        if self.find_by(pk, row[pk]):
            raise ConstraintError(
                f"table {self.name}: duplicate primary key {row[pk]!r}"
            )
