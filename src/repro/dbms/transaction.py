"""Transactions: undo-based atomicity over the table layer.

One writer at a time (the engine serialises), undo records captured for
every mutation, rollback restores tables and blob store exactly.  This is
the ACID surface the paper lists as a core benefit of moving archive data
under DBMS control (Kapitel 1.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..errors import TransactionError
from .table import Row, Table
from .wal import LogKind, WriteAheadLog


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class UndoRecord:
    """Inverse of one mutation, applied on rollback (in reverse order)."""

    apply: Callable[[], None]
    description: str


class Transaction:
    """A unit of work over the engine's tables and blob store."""

    def __init__(self, txn_id: int, wal: WriteAheadLog) -> None:
        self.txn_id = txn_id
        self._wal = wal
        self.state = TxnState.ACTIVE
        self._undo: List[UndoRecord] = []
        self._wal.append(txn_id, LogKind.BEGIN)

    # -- mutation capture ---------------------------------------------------

    def record_insert(self, table: Table, rowid: int, row: Row) -> None:
        self._require_active()
        self._wal.append(self.txn_id, LogKind.INSERT, table.name, rowid, after=row)
        self._undo.append(
            UndoRecord(
                apply=lambda: table.delete(rowid),
                description=f"undo insert {table.name}#{rowid}",
            )
        )

    def record_update(self, table: Table, rowid: int, before: Row, after: Row) -> None:
        self._require_active()
        self._wal.append(
            self.txn_id, LogKind.UPDATE, table.name, rowid, before=before, after=after
        )
        self._undo.append(
            UndoRecord(
                apply=lambda: table.update(rowid, before),
                description=f"undo update {table.name}#{rowid}",
            )
        )

    def record_delete(self, table: Table, rowid: int, before: Row) -> None:
        self._require_active()
        self._wal.append(self.txn_id, LogKind.DELETE, table.name, rowid, before=before)
        self._undo.append(
            UndoRecord(
                apply=lambda: table.restore(rowid, before),
                description=f"undo delete {table.name}#{rowid}",
            )
        )

    def record_custom(self, undo: Callable[[], None], description: str) -> None:
        """Capture an arbitrary compensating action (used by the blob store)."""
        self._require_active()
        self._undo.append(UndoRecord(apply=undo, description=description))

    # -- lifecycle ------------------------------------------------------------

    def commit(self) -> None:
        self._require_active()
        self._wal.append(self.txn_id, LogKind.COMMIT)
        self.state = TxnState.COMMITTED
        self._undo.clear()

    def rollback(self) -> None:
        self._require_active()
        for record in reversed(self._undo):
            record.apply()
        self._undo.clear()
        self._wal.append(self.txn_id, LogKind.ABORT)
        self.state = TxnState.ABORTED

    @property
    def active(self) -> bool:
        return self.state is TxnState.ACTIVE

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}, not active"
            )
