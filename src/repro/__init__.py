"""HEAVEN — a Hierarchical Storage and Archive Environment for
Multidimensional Array Database Management Systems.

Reproduction of Bernd Reiner's dissertation / EDBT 2004 system: an array
DBMS (RasDaMan-like) fused with an automated tertiary-storage system, with
super-tile clustering, scheduled tape access, a caching hierarchy, object
framing and precomputed operation results.

Quickstart::

    from repro import Heaven, HeavenConfig, MInterval
    from repro.workloads import climate_object, ClimateGrid

    heaven = Heaven(HeavenConfig())
    heaven.create_collection("climate")
    obj = climate_object("temp", ClimateGrid(180, 90, 16, 12))
    heaven.insert("climate", obj)
    heaven.archive("climate", "temp")          # migrate to (simulated) tape
    cells = heaven.read("climate", "temp", MInterval.of((0, 59), (0, 29), (0, 3), (0, 5)))
    results = heaven.query("select avg_cells(c[0:59,0:29,0:3,0:5]) from climate as c")
"""

import logging as _logging

# Library convention: "repro.*" loggers stay silent unless the application
# configures handlers (e.g. logging.basicConfig(level=logging.DEBUG)).
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from .arrays import (
    MDD,
    Collection,
    MArray,
    MInterval,
    QueryExecutor,
    QueryResult,
    RegularTiling,
    SInterval,
)
from .core import (
    AccessStatistics,
    BoxFrame,
    ClusteredPlacement,
    CoupledExporter,
    ElevatorScheduler,
    ExportReport,
    FIFOScheduler,
    Frame,
    HalfSpaceFrame,
    Heaven,
    HeavenConfig,
    MaskFrame,
    MultiBoxFrame,
    RetrievalReport,
    ScatterPlacement,
    SuperTile,
    TCTExporter,
    estar_partition,
    recover_incomplete_exports,
    star_partition,
)
from .dbms import Database
from .errors import (
    ArrayError,
    AuthError,
    BlobNotFoundError,
    CacheError,
    CachePinnedError,
    CellTypeError,
    ConstraintError,
    DatabaseError,
    DataNodeError,
    DomainError,
    DriveBusyError,
    DriveFaultError,
    ExportError,
    FaultError,
    FramingError,
    HeavenError,
    HSMError,
    HSMFaultError,
    MediaFaultError,
    MediumFullError,
    MediumNotFoundError,
    QueryError,
    QuerySyntaxError,
    QuotaExceededError,
    ReproError,
    RetryExhaustedError,
    RobotFaultError,
    SchemaError,
    SegmentNotFoundError,
    ServiceError,
    ShardUnavailableError,
    StorageError,
    TilingError,
    TransactionError,
    WireFormatError,
)
from .faults import (
    FAULT_SITES,
    NO_FAULTS,
    FaultPlan,
    FaultSpec,
    FaultStats,
    NullFaultPlan,
    RetryPolicy,
)
from .obs import MetricsRegistry, Observability, Tracer
from .tertiary import GB, HSMSystem, KB, MB, SimClock, TB, TapeLibrary

__version__ = "1.0.0"

__all__ = [
    "AccessStatistics",
    "ArrayError",
    "AuthError",
    "BlobNotFoundError",
    "BoxFrame",
    "CacheError",
    "CachePinnedError",
    "CellTypeError",
    "ClusteredPlacement",
    "Collection",
    "ConstraintError",
    "CoupledExporter",
    "Database",
    "DatabaseError",
    "DataNodeError",
    "DomainError",
    "DriveBusyError",
    "DriveFaultError",
    "ElevatorScheduler",
    "ExportError",
    "ExportReport",
    "FAULT_SITES",
    "FIFOScheduler",
    "FaultError",
    "FaultPlan",
    "FaultSpec",
    "FaultStats",
    "Frame",
    "FramingError",
    "GB",
    "HSMError",
    "HSMFaultError",
    "HSMSystem",
    "HalfSpaceFrame",
    "Heaven",
    "HeavenConfig",
    "HeavenError",
    "KB",
    "MArray",
    "MB",
    "MDD",
    "MInterval",
    "MaskFrame",
    "MediaFaultError",
    "MediumFullError",
    "MediumNotFoundError",
    "MetricsRegistry",
    "MultiBoxFrame",
    "NO_FAULTS",
    "NullFaultPlan",
    "Observability",
    "QueryError",
    "QueryExecutor",
    "QueryResult",
    "QuerySyntaxError",
    "QuotaExceededError",
    "RegularTiling",
    "ReproError",
    "RetrievalReport",
    "RetryExhaustedError",
    "RetryPolicy",
    "RobotFaultError",
    "SInterval",
    "ScatterPlacement",
    "SchemaError",
    "SegmentNotFoundError",
    "ServiceError",
    "ShardUnavailableError",
    "SimClock",
    "StorageError",
    "SuperTile",
    "TB",
    "TCTExporter",
    "TapeLibrary",
    "TilingError",
    "Tracer",
    "TransactionError",
    "WireFormatError",
    "estar_partition",
    "recover_incomplete_exports",
    "star_partition",
]
