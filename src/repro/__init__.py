"""HEAVEN — a Hierarchical Storage and Archive Environment for
Multidimensional Array Database Management Systems.

Reproduction of Bernd Reiner's dissertation / EDBT 2004 system: an array
DBMS (RasDaMan-like) fused with an automated tertiary-storage system, with
super-tile clustering, scheduled tape access, a caching hierarchy, object
framing and precomputed operation results.

Quickstart::

    from repro import Heaven, HeavenConfig, MInterval
    from repro.workloads import climate_object, ClimateGrid

    heaven = Heaven(HeavenConfig())
    heaven.create_collection("climate")
    obj = climate_object("temp", ClimateGrid(180, 90, 16, 12))
    heaven.insert("climate", obj)
    heaven.archive("climate", "temp")          # migrate to (simulated) tape
    cells = heaven.read("climate", "temp", MInterval.of((0, 59), (0, 29), (0, 3), (0, 5)))
    results = heaven.query("select avg_cells(c[0:59,0:29,0:3,0:5]) from climate as c")
"""

import logging as _logging

# Library convention: "repro.*" loggers stay silent unless the application
# configures handlers (e.g. logging.basicConfig(level=logging.DEBUG)).
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from .arrays import (
    MDD,
    Collection,
    MArray,
    MInterval,
    QueryExecutor,
    QueryResult,
    RegularTiling,
    SInterval,
)
from .core import (
    AccessStatistics,
    BoxFrame,
    ClusteredPlacement,
    CoupledExporter,
    ElevatorScheduler,
    ExportReport,
    FIFOScheduler,
    Frame,
    HalfSpaceFrame,
    Heaven,
    HeavenConfig,
    MaskFrame,
    MultiBoxFrame,
    RetrievalReport,
    ScatterPlacement,
    SuperTile,
    TCTExporter,
    estar_partition,
    star_partition,
)
from .dbms import Database
from .errors import ReproError
from .obs import MetricsRegistry, Observability, Tracer
from .tertiary import GB, HSMSystem, KB, MB, SimClock, TB, TapeLibrary

__version__ = "1.0.0"

__all__ = [
    "AccessStatistics",
    "BoxFrame",
    "ClusteredPlacement",
    "Collection",
    "CoupledExporter",
    "Database",
    "ElevatorScheduler",
    "ExportReport",
    "FIFOScheduler",
    "Frame",
    "GB",
    "HSMSystem",
    "HalfSpaceFrame",
    "Heaven",
    "HeavenConfig",
    "KB",
    "MArray",
    "MB",
    "MDD",
    "MInterval",
    "MaskFrame",
    "MetricsRegistry",
    "MultiBoxFrame",
    "Observability",
    "QueryExecutor",
    "QueryResult",
    "RegularTiling",
    "ReproError",
    "RetrievalReport",
    "SInterval",
    "ScatterPlacement",
    "SimClock",
    "SuperTile",
    "TB",
    "TCTExporter",
    "TapeLibrary",
    "Tracer",
    "estar_partition",
    "star_partition",
]
