"""Deterministic, seeded fault injection for the tertiary-storage simulator.

Real tape libraries fail in characteristic ways: robots jam, mounts time
out, media develop bad spots, drives stall mid-stream, and HSM staging
requests bounce.  The simulator models them all through one object — a
:class:`FaultPlan` — that the devices consult at explicit hook points:

===========  ==========================  ===================================
hook         called from                 injected fault
===========  ==========================  ===================================
``mount``    :meth:`Drive.load`          mount failure → ``DriveFaultError``
``robot``    :meth:`Robot._fetch`        robot jam → ``RobotFaultError``
``media``    :meth:`Drive.read_segment`  bad spot / read error →
             / :meth:`Drive.read_extent` ``MediaFaultError``
``stall``    :meth:`Drive._transfer`     drive stall (extra seconds, no
                                         error)
``hsm``      :meth:`HSMSystem.stage_file` transient staging error →
                                         ``HSMFaultError``
===========  ==========================  ===================================

Every injected fault charges the shared :class:`SimClock` a configurable
penalty under the event kind ``"fault"``, so faults show up in span
breakdowns and flamegraphs exactly like mounts and seeks do.  Randomised
faults draw from one ``random.Random(seed)`` stream: the same seed, plan
and workload always produce the same fault sequence, virtual timeline and
event log (the replay property the chaos suite asserts).

Recovery policy lives next door: :class:`RetryPolicy` describes bounded
retry with exponential backoff; the library, HSM and HEAVEN façade consume
it (see :mod:`repro.tertiary.library` and ``docs/FAULTS.md``).

The default for every device is the shared :data:`NO_FAULTS` null plan: no
draws, no charges, no behavioural change — fault-free runs stay
byte-identical to a build without this module.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import (
    DriveFaultError,
    HSMFaultError,
    MediaFaultError,
    RobotFaultError,
)

#: hook sites a plan can inject faults at
FAULT_SITES: Tuple[str, ...] = ("mount", "robot", "media", "stall", "hsm")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff (virtual seconds).

    Attributes:
        max_attempts: total tries of one operation (first try included);
            the recovery layer raises ``RetryExhaustedError`` after the
            last failed attempt.
        backoff_base_s: virtual seconds charged before the first retry.
        backoff_factor: multiplier applied per further retry.
        backoff_max_s: cap of a single backoff delay.
    """

    max_attempts: int = 4
    backoff_base_s: float = 2.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 120.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")

    def delay(self, attempt: int) -> float:
        """Backoff before retry *attempt* (1-based), in virtual seconds."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
        )


@dataclass(frozen=True)
class FaultSpec:
    """Random fault rates and penalties of one :class:`FaultPlan`.

    Rates are per-hook-invocation probabilities in ``[0, 1]``; penalties
    are the virtual seconds a fault occurrence costs before the typed
    error is raised (a jammed robot needs operator attention, a failed
    mount times out, ...).  ``drive_stall_max_s`` bounds the uniformly
    drawn extra streaming delay of a stall.
    """

    mount_failure_rate: float = 0.0
    robot_jam_rate: float = 0.0
    media_error_rate: float = 0.0
    drive_stall_rate: float = 0.0
    hsm_error_rate: float = 0.0
    mount_failure_penalty_s: float = 15.0
    robot_jam_penalty_s: float = 60.0
    media_error_penalty_s: float = 5.0
    drive_stall_max_s: float = 20.0
    hsm_error_penalty_s: float = 10.0

    def __post_init__(self) -> None:
        for name in (
            "mount_failure_rate",
            "robot_jam_rate",
            "media_error_rate",
            "drive_stall_rate",
            "hsm_error_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        for name in (
            "mount_failure_penalty_s",
            "robot_jam_penalty_s",
            "media_error_penalty_s",
            "drive_stall_max_s",
            "hsm_error_penalty_s",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


#: FaultSpec per-site probability fields (combined as independent events)
_RATE_FIELDS: Tuple[str, ...] = (
    "mount_failure_rate",
    "robot_jam_rate",
    "media_error_rate",
    "drive_stall_rate",
    "hsm_error_rate",
)

#: FaultSpec penalty/bound fields (combined as the worst case)
_PENALTY_FIELDS: Tuple[str, ...] = (
    "mount_failure_penalty_s",
    "robot_jam_penalty_s",
    "media_error_penalty_s",
    "drive_stall_max_s",
    "hsm_error_penalty_s",
)


def compose_specs(*specs: FaultSpec) -> FaultSpec:
    """Merge several :class:`FaultSpec` mixins into one plan spec.

    Rates compose as independent failure sources — ``1 - ∏(1 - r)``, so
    stacking a "flaky mounts" mixin onto a "worn media" mixin keeps both
    probabilities meaningful and never exceeds 1.  Penalties take the
    maximum: the composed environment is at least as hostile as its worst
    mixin.  With no arguments the identity (all-zero-rate) spec returns.
    """
    merged: Dict[str, float] = {}
    for name in _RATE_FIELDS:
        survive = 1.0
        for spec in specs:
            survive *= 1.0 - getattr(spec, name)
        merged[name] = min(1.0, 1.0 - survive)
    for name in _PENALTY_FIELDS:
        values = [getattr(spec, name) for spec in specs]
        merged[name] = max(values) if values else getattr(FaultSpec, name)
    return FaultSpec(**merged)


@dataclass
class FaultStats:
    """Injected-fault counters of one plan."""

    injected: Dict[str, int] = field(default_factory=dict)
    penalty_seconds: float = 0.0

    @property
    def total(self) -> int:
        return sum(self.injected.values())

    def count(self, site: str) -> int:
        return self.injected.get(site, 0)


class FaultPlan:
    """Seeded source of injected faults, shared by all devices of a library.

    Two injection modes compose:

    * **randomised** — per-site rates from the :class:`FaultSpec` draw
      from one deterministic ``random.Random(seed)`` stream;
    * **scheduled** — :meth:`fail_next` queues one-shot faults ("the next
      mount on drive-0 fails"), fired before any random draw.

    :meth:`set_offline` flips the whole library unavailable: every robot
    exchange fails until :meth:`set_offline(False) <set_offline>`, which
    is how the chaos suite exercises cache-served degraded reads.

    The plan charges fault penalties against the clock it is bound to
    (:meth:`bind` — the owning :class:`TapeLibrary` does this on
    construction) under the event kind ``"fault"``.
    """

    def __init__(self, seed: int = 0, spec: Optional[FaultSpec] = None) -> None:
        self.seed = seed
        self.spec = spec if spec is not None else FaultSpec()
        self.stats = FaultStats()
        self.offline = False
        self.clock = None
        self._rng = random.Random(seed)
        #: site -> queue of device filters (None matches any device)
        self._scheduled: Dict[str, List[Optional[str]]] = {}

    # -- configuration -------------------------------------------------------

    def bind(self, clock) -> None:
        """Attach the virtual clock fault penalties are charged against."""
        self.clock = clock

    def reset(self) -> None:
        """Re-arm the plan: fresh RNG stream, counters and schedule."""
        self._rng = random.Random(self.seed)
        self._scheduled.clear()
        self.stats = FaultStats()
        self.offline = False

    def fail_next(self, site: str, device: Optional[str] = None, count: int = 1) -> None:
        """Schedule the next *count* hook hits at *site* to fault.

        Args:
            site: one of :data:`FAULT_SITES`.
            device: only fire when the hook reports this device id
                (``None`` matches any device).
            count: how many occurrences to schedule.
        """
        if site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {site!r}; known: {FAULT_SITES}")
        if count < 1:
            raise ValueError("count must be >= 1")
        self._scheduled.setdefault(site, []).extend([device] * count)

    def set_offline(self, offline: bool = True) -> None:
        """Mark the whole library (un)available: exchanges fail while set."""
        self.offline = offline

    def scheduled(self, site: str) -> int:
        """Number of queued one-shot faults at *site*."""
        return len(self._scheduled.get(site, []))

    # -- device hooks --------------------------------------------------------

    def on_drive_load(self, drive_id: str, medium_id: str) -> None:
        """Hook of :meth:`Drive.load`; may raise :class:`DriveFaultError`."""
        if self._fire("mount", drive_id, self.spec.mount_failure_rate):
            self._charge(
                "mount", drive_id, self.spec.mount_failure_penalty_s, medium_id
            )
            raise DriveFaultError(
                f"injected mount failure: drive {drive_id} rejected {medium_id}"
            )

    def on_exchange(self, robot_id: str, medium_id: str) -> None:
        """Hook of :meth:`Robot._fetch`; may raise :class:`RobotFaultError`."""
        if self.offline:
            self._charge(
                "robot", robot_id, self.spec.robot_jam_penalty_s,
                f"{medium_id} (library offline)",
            )
            raise RobotFaultError(
                f"library offline: robot {robot_id} cannot fetch {medium_id}"
            )
        if self._fire("robot", robot_id, self.spec.robot_jam_rate):
            self._charge("robot", robot_id, self.spec.robot_jam_penalty_s, medium_id)
            raise RobotFaultError(
                f"injected robot jam: {robot_id} fetching {medium_id}"
            )

    def on_media_read(self, medium, offset: int, length: int, device: str) -> None:
        """Hook of drive reads; may raise :class:`MediaFaultError`.

        Checks the medium's registered bad spots first (transient spots
        heal after one hit, permanent ones keep failing), then the random
        media-error rate.
        """
        spot = medium.bad_spot_in(offset, length)
        if spot is not None:
            if spot.transient:
                medium.clear_bad_spot(spot)
            self._charge(
                "media", device, self.spec.media_error_penalty_s,
                f"{medium.medium_id} bad spot @{spot.offset}",
            )
            raise MediaFaultError(
                f"bad spot on {medium.medium_id}: read [{offset}, "
                f"{offset + length}) hits [{spot.offset}, {spot.end})"
            )
        if self._fire("media", device, self.spec.media_error_rate):
            self._charge(
                "media", device, self.spec.media_error_penalty_s,
                f"{medium.medium_id} @{offset}",
            )
            raise MediaFaultError(
                f"injected media read error on {medium.medium_id} at {offset}"
            )

    def on_transfer(self, drive_id: str, nbytes: int) -> None:
        """Hook of :meth:`Drive._transfer`: drive stall (delay, no error)."""
        if self._fire("stall", drive_id, self.spec.drive_stall_rate):
            stall = self._rng.uniform(0.0, self.spec.drive_stall_max_s)
            self._charge("stall", drive_id, stall, f"{nbytes} B stream stalled")

    def on_hsm_stage(self, name: str) -> None:
        """Hook of :meth:`HSMSystem.stage_file`; may raise :class:`HSMFaultError`."""
        if self._fire("hsm", "hsm", self.spec.hsm_error_rate):
            self._charge("hsm", "hsm-staging", self.spec.hsm_error_penalty_s, name)
            raise HSMFaultError(f"injected transient staging error for {name!r}")

    # -- internals -----------------------------------------------------------

    def _fire(self, site: str, device: str, rate: float) -> bool:
        queue = self._scheduled.get(site)
        if queue and (queue[0] is None or queue[0] == device):
            queue.pop(0)
            return True
        return rate > 0.0 and self._rng.random() < rate

    def _charge(self, site: str, device: str, penalty: float, detail: str) -> None:
        self.stats.injected[site] = self.stats.injected.get(site, 0) + 1
        self.stats.penalty_seconds += penalty
        if self.clock is not None and penalty > 0:
            self.clock.charge(penalty, "fault", device, detail=f"{site}: {detail}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(seed={self.seed}, injected={self.stats.total}, "
            f"offline={self.offline})"
        )


class NullFaultPlan:
    """Shared do-nothing plan: the default when no faults are configured."""

    offline = False
    seed = None
    spec = FaultSpec()
    #: always-empty stats so instrument collectors can read it uniformly
    stats = FaultStats()

    def bind(self, clock) -> None:
        pass

    def reset(self) -> None:
        pass

    def scheduled(self, site: str) -> int:
        return 0

    def on_drive_load(self, drive_id: str, medium_id: str) -> None:
        pass

    def on_exchange(self, robot_id: str, medium_id: str) -> None:
        pass

    def on_media_read(self, medium, offset: int, length: int, device: str) -> None:
        pass

    def on_transfer(self, drive_id: str, nbytes: int) -> None:
        pass

    def on_hsm_stage(self, name: str) -> None:
        pass


#: module-level null plan shared by every device constructed without one
NO_FAULTS = NullFaultPlan()
