"""Deterministic fault injection and recovery policy (chaos layer).

See :mod:`repro.faults.plan` for the fault model and ``docs/FAULTS.md``
for the full fault/retry/degradation matrix.
"""

from .plan import (
    FAULT_SITES,
    NO_FAULTS,
    FaultPlan,
    FaultSpec,
    FaultStats,
    NullFaultPlan,
    RetryPolicy,
    compose_specs,
)

__all__ = [
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "FaultStats",
    "NO_FAULTS",
    "NullFaultPlan",
    "RetryPolicy",
    "compose_specs",
]
