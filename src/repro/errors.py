"""Exception hierarchy shared by every repro subpackage.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Substrate-specific bases (``StorageError``, ``DatabaseError``,
``ArrayError``, ``HeavenError``) let tests assert the failing layer.
"""


class ReproError(Exception):
    """Base class of every error raised by the repro library."""


class StorageError(ReproError):
    """Base class for tertiary-storage simulator errors."""


class MediumFullError(StorageError):
    """A write did not fit on the target medium."""


class MediumNotFoundError(StorageError):
    """The requested medium id is not registered in the library."""


class SegmentNotFoundError(StorageError):
    """The named data segment does not exist on the medium."""


class DriveBusyError(StorageError):
    """No free drive was available and preemption was disabled."""


class HSMError(StorageError):
    """File-level hierarchical storage manager error."""


class FaultError(StorageError):
    """Base class of injected hardware faults (see :mod:`repro.faults`).

    Faults are *transient* by default: the recovery layer retries them
    with backoff before escalating to :class:`RetryExhaustedError`.
    """

    transient = True


class MediaFaultError(FaultError):
    """A medium bad spot or read error corrupted the streamed extent."""


class RobotFaultError(FaultError):
    """The library robot jammed or the library is offline."""


class DriveFaultError(FaultError):
    """A drive refused to load a medium (mount failure)."""


class HSMFaultError(FaultError):
    """A transient HSM staging request failure."""


class RetryExhaustedError(StorageError):
    """Recovery gave up: an operation kept faulting past the retry budget."""


class DatabaseError(ReproError):
    """Base class for base-DBMS errors."""


class SchemaError(DatabaseError):
    """Table/column definition violated or unknown."""


class ConstraintError(DatabaseError):
    """Primary-key or not-null constraint violated."""


class TransactionError(DatabaseError):
    """Illegal transaction state transition (e.g. commit after abort)."""


class BlobNotFoundError(DatabaseError):
    """BLOB oid not present in the blob store."""


class ArrayError(ReproError):
    """Base class for multidimensional-array errors."""


class DomainError(ArrayError):
    """Invalid spatial domain or out-of-domain access."""


class CellTypeError(ArrayError):
    """Unknown or incompatible cell type."""


class TilingError(ArrayError):
    """Invalid tiling specification."""


class QueryError(ArrayError):
    """RasQL parse or execution error."""


class QuerySyntaxError(QueryError):
    """The query text could not be parsed."""


class HeavenError(ReproError):
    """Base class for HEAVEN-core errors."""


class ExportError(HeavenError):
    """Object export/migration to tertiary storage failed."""


class CacheError(HeavenError):
    """Cache configuration or bookkeeping error."""


class CachePinnedError(CacheError):
    """Eviction needed space but every resident entry is pinned.

    Raised by :meth:`~repro.core.cache.DiskCache.evict_one` when pinned
    (in-flight) segments cover the whole cache: the staging pipeline sized
    a batch wave wrong, or a caller forgot to release a staging ticket.
    """


class FramingError(HeavenError):
    """Invalid object-framing specification."""


class ServiceError(ReproError):
    """Base class for SN/DN service-tier errors (see :mod:`repro.service`)."""


class WireFormatError(ServiceError):
    """A wire message could not be decoded (truncated or malformed)."""


class AuthError(ServiceError):
    """The presented tenant token is unknown or disabled."""

    status = 401


class QuotaExceededError(ServiceError):
    """A tenant exceeded its request or byte quota (429-style rejection)."""

    status = 429


class ShardUnavailableError(ServiceError):
    """A data node failed or timed out past the retry budget for a shard.

    With ``partial_results`` disabled (the default) the service node
    propagates this typed error instead of returning incomplete cells.
    """

    status = 503


class DataNodeError(ServiceError):
    """A data node answered with a typed error response.

    Wraps the storage-layer failure (``RetryExhaustedError``, offline
    library, ...) that occurred inside the node's own HEAVEN instance.
    """

    status = 502
