"""Command-line interface: explore HEAVEN's cost models without writing code.

::

    python -m repro info
    python -m repro demo
    python -m repro trace demo            # span tree + flamegraph + leaf totals
    python -m repro trace demo --wall     # plus wall flamegraph + divergence
    python -m repro stats demo            # Prometheus-style metrics dump
    python -m repro profile demo          # wall-clock hot functions + phases
    python -m repro bench                 # wall-clock benchmark suite
    python -m repro export    --object-mb 256 --tile-kb 512 --super-tile-mb 16
    python -m repro retrieval --object-mb 256 --selectivity 0.05 --queries 5 \\
                              --policy lru --profile DLT-7000
    python -m repro chaos retrieval --seed 42 --mount-fail-rate 0.2
    python -m repro multiquery --interactive 4 --holdback 2.0
    python -m repro simtest --seed 7 --ops 200 --check-determinism

Every command builds a fresh simulated environment, runs the scenario and
prints the virtual-time cost breakdown — the same numbers the benchmark
suite reports, but for parameters of your choosing.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

import numpy as np

from .arrays import DOUBLE, MDD, MInterval, RegularTiling, ZeroSource
from .bench import ResultTable
from .core import (
    ClusteredPlacement,
    CoupledExporter,
    Heaven,
    HeavenConfig,
    TCTExporter,
    star_partition,
)
from .core.cache import policy_names
from .errors import StorageError
from .faults import FaultPlan, FaultSpec
from .obs import (
    WallProfiler,
    leaf_totals,
    prometheus_text,
    render_divergence,
    render_flamegraph,
    render_hot_functions,
    render_leaf_table,
    render_phase_breakdown,
    render_profile_flamegraph,
    render_span_tree,
    spans_to_jsonl,
)
from .simtest import MUTATIONS
from .tertiary import (
    GB,
    MB,
    TAPE_PROFILES,
    environment_table,
    scaled_profile,
)
from .workloads import ClimateGrid, climate_object, subcube


def _profile(name: str, media_gb: Optional[float]):
    try:
        profile = TAPE_PROFILES[name]
    except KeyError:
        raise SystemExit(
            f"unknown profile {name!r}; known: {sorted(TAPE_PROFILES)}"
        )
    if media_gb is not None:
        profile = scaled_profile(profile, int(media_gb * GB))
    return profile


def _make_object(object_mb: int, tile_kb: int, dims: int) -> MDD:
    cells = object_mb * MB // DOUBLE.size_bytes
    side = max(1, int(round(cells ** (1.0 / dims))))
    tile_side = max(1, int(round((tile_kb * 1024 // DOUBLE.size_bytes) ** (1.0 / dims))))
    return MDD(
        "obj",
        MInterval.from_shape((side,) * dims),
        DOUBLE,
        tiling=RegularTiling((min(tile_side, side),) * dims),
        source=ZeroSource(),
    )


def cmd_info(_args: argparse.Namespace) -> int:
    table = ResultTable(
        "Modelled devices",
        ["device", "capacity", "exchange [s]", "mean access [s]", "transfer",
         "vs disk"],
    )
    for row in environment_table():
        table.add(row.device, row.capacity, row.exchange_s, row.avg_access_s,
                  row.transfer, row.access_vs_disk)
    table.print()
    print(f"\neviction policies: {', '.join(policy_names())}")
    print("compression codecs: none, zlib")
    return 0


def _demo_config() -> HeavenConfig:
    return HeavenConfig(super_tile_bytes=4 * MB, disk_cache_bytes=64 * MB)


def _run_demo_scenario(heaven: Heaven):
    """The end-to-end demo: archive a climate object, subset-read, query."""
    heaven.create_collection("climate")
    obj = climate_object("temp", ClimateGrid(180, 90, 8, 12), seed=1,
                         tiling=RegularTiling((30, 30, 4, 6)))
    heaven.insert("climate", obj)
    report = heaven.archive("climate", "temp")
    region = MInterval.of((30, 60), (40, 60), (0, 3), (6, 6))
    cells, read_report = heaven.read_with_report("climate", "temp", region)
    result = heaven.query(
        "select avg_cells(c[0:179, 0:89, 0:7, 0:0]) from climate as c")
    return report, cells, read_report, result


def _retrieval_config() -> HeavenConfig:
    return HeavenConfig(super_tile_bytes=16 * MB, disk_cache_bytes=256 * MB,
                        retain_payload=False)


def _run_retrieval_scenario(heaven: Heaven):
    """A few random subcube reads over one archived object."""
    heaven.create_collection("c")
    mdd = _make_object(64, 512, 3)
    heaven.insert("c", mdd)
    heaven.archive("c", "obj")
    heaven.library.unmount_all()
    rng = np.random.default_rng(0)
    for _query in range(3):
        region = subcube(mdd.domain, 0.05, rng)
        heaven.read_with_report("c", "obj", region)


def _thrash_config() -> HeavenConfig:
    """Disk cache far smaller than one scheduled batch (cache pressure)."""
    return HeavenConfig(
        super_tile_bytes=4 * MB,
        disk_cache_bytes=8 * MB,
        memory_cache_bytes=128 * MB,
        retain_payload=False,
    )


def _run_thrash_scenario(heaven: Heaven):
    """One ``read_many`` batch whose staged bytes exceed the disk cache.

    The wave-admitted, pinned staging pipeline must serve the batch without
    a single per-tile restage; the CI staging-regression job gates on
    ``repro_restages_total 0`` over this scenario's metrics dump.
    """
    heaven.create_collection("c")
    mdd = _make_object(64, 512, 3)
    heaven.insert("c", mdd)
    heaven.archive("c", "obj")
    heaven.library.unmount_all()
    axes = list(mdd.domain.axes)
    first = axes[0]
    slabs = first.split_regular(max(1, first.extent // 4))
    batch = [
        ("c", "obj", MInterval.of((slab.lo, slab.hi), *axes[1:]))
        for slab in slabs
    ]
    return heaven.read_many(batch)


def _parallel_config(num_drives: int = 2) -> HeavenConfig:
    """Multi-drive staging: small media force the batch across many tapes."""
    return HeavenConfig(
        tape_profile=scaled_profile(TAPE_PROFILES["DLT-7000"], 48 * MB),
        num_drives=num_drives,
        parallel_drives=num_drives,
        super_tile_bytes=8 * MB,
        disk_cache_bytes=1 * GB,
        retain_payload=False,
    )


def _run_parallel_scenario(heaven: Heaven):
    """One ``read_many`` batch spread over many media.

    With ``parallel_drives > 1`` each admission wave runs through the
    discrete-event :class:`~repro.core.scheduler.ParallelExecutor` — one
    virtual timeline per drive, the robot arm serialised between them —
    so the batch's staging makespan shrinks with the drive count while
    the streamed bytes stay identical.
    """
    heaven.create_collection("c")
    mdd = _make_object(192, 512, 3)
    heaven.insert("c", mdd)
    heaven.archive("c", "obj")
    heaven.library.unmount_all()
    axes = list(mdd.domain.axes)
    first = axes[0]
    slabs = first.split_regular(max(1, first.extent // 6))
    batch = [
        ("c", "obj", MInterval.of((slab.lo, slab.hi), *axes[1:]))
        for slab in slabs
    ]
    return heaven.read_many(batch)


def _multiquery_config() -> HeavenConfig:
    """Thrash-plus-scan under concurrent users: one scan + subwindow reads."""
    return HeavenConfig(
        super_tile_bytes=4 * MB,
        disk_cache_bytes=48 * MB,
        memory_cache_bytes=64 * MB,
        retain_payload=False,
        admission_aging_bound_s=3600.0,
    )


def _multiquery_queries(mdd: MDD, interactive: int):
    """The adversarial mix: one full-archive scan + periodic subwindows.

    Returns ``(name, region, arrival_offset_s, weight)`` tuples; offsets
    are relative to the moment the run starts.
    """
    axes = list(mdd.domain.axes)
    first = axes[0]
    queries = [("scan", mdd.domain, 0.0, 0.5)]
    for index in range(interactive):
        lo = first.lo + (index * first.extent) // max(1, interactive)
        hi = min(first.hi, lo + max(1, first.extent // 4) - 1)
        region = MInterval.of((lo, hi), *((a.lo, a.hi) for a in axes[1:]))
        queries.append((f"inter{index}", region, 4.0 * index, 2.0))
    return queries


def _run_multiquery_scenario(heaven: Heaven):
    """Concurrent scan + interactive reads through the admission layer."""
    from .core.admission import AdmissionController, QuerySpec

    heaven.create_collection("c")
    mdd = _make_object(64, 512, 3)
    heaven.insert("c", mdd)
    heaven.archive("c", "obj")
    heaven.library.unmount_all()
    now = heaven.clock.now
    specs = [
        QuerySpec(
            collection="c",
            object_name="obj",
            region=region,
            arrival_s=now + offset,
            weight=weight,
            name=name,
        )
        for name, region, offset, weight in _multiquery_queries(mdd, 4)
    ]
    return AdmissionController(heaven).run(specs)


def _chaos_config() -> HeavenConfig:
    """The retrieval scenario under a fixed seeded fault plan."""
    return dataclasses.replace(
        _retrieval_config(),
        num_drives=2,
        fault_plan=FaultPlan(
            seed=7,
            spec=FaultSpec(
                mount_failure_rate=0.2,
                media_error_rate=0.05,
                robot_jam_rate=0.05,
                drive_stall_rate=0.1,
            ),
        ),
    )


def _run_chaos_scenario(heaven: Heaven):
    """Retrieval reads under injected faults; typed errors are survivable."""
    heaven.create_collection("c")
    mdd = _make_object(64, 512, 3)
    heaven.insert("c", mdd)
    heaven.archive("c", "obj")
    heaven.library.unmount_all()
    rng = np.random.default_rng(0)
    completed = failed = 0
    for _query in range(5):
        region = subcube(mdd.domain, 0.05, rng)
        try:
            heaven.read_with_report("c", "obj", region)
            completed += 1
        except StorageError:
            failed += 1
    return completed, failed


def _service_config() -> HeavenConfig:
    """Small super-tiles: enough segments to spread across a hash ring."""
    return HeavenConfig(
        super_tile_bytes=1 * MB,
        disk_cache_bytes=64 * MB,
        retain_payload=False,
    )


def _run_service_scenario(heaven: Heaven):
    """Concurrent multi-tenant reads through the SN/DN service tier.

    The scenario's data nodes all share the passed HEAVEN instance
    (oracle mode), so chaos runs inject hardware faults underneath the
    service tier: reads must either complete or fail typed.
    """
    from .errors import ServiceError
    from .service import ServiceCluster

    heaven.create_collection("c")
    mdd = _make_object(16, 256, 3)
    heaven.insert("c", mdd)
    heaven.archive("c", "obj")
    heaven.library.unmount_all()
    cluster = ServiceCluster.over(heaven, nodes=2, objects=[("c", "obj")])
    cluster.register_tenant("alice")
    cluster.register_tenant("bob")
    rng = np.random.default_rng(0)
    requests = [
        (
            f"token-{'alice' if index % 2 == 0 else 'bob'}",
            str(subcube(mdd.domain, 0.05, rng)),
        )
        for index in range(4)
    ]
    completed = failed = 0

    async def body():
        nonlocal completed, failed
        import asyncio

        outcomes = await asyncio.gather(
            *(
                cluster.sn.read(token, "c", "obj", region)
                for token, region in requests
            ),
            return_exceptions=True,
        )
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                if isinstance(outcome, ServiceError):
                    failed += 1
                else:
                    raise outcome
            else:
                completed += 1

    cluster.run(body)
    return completed, failed


#: scenarios runnable under ``trace`` / ``stats``: name → (config, runner)
_SCENARIOS = {
    "demo": (_demo_config, _run_demo_scenario),
    "retrieval": (_retrieval_config, _run_retrieval_scenario),
    "thrash": (_thrash_config, _run_thrash_scenario),
    "parallel": (_parallel_config, _run_parallel_scenario),
    "chaos": (_chaos_config, _run_chaos_scenario),
    "multiquery": (_multiquery_config, _run_multiquery_scenario),
    "service": (_service_config, _run_service_scenario),
}


def cmd_parallel(args: argparse.Namespace) -> int:
    """Stage the same batch at growing drive counts; executed numbers only."""
    table = ResultTable(
        "Parallel staging: executed cost by drive count",
        ["drives", "total [s]", "staging makespan [s]", "device work [s]",
         "executed speedup", "robot wait [s]", "exchanges"],
    )
    for drives in (1, 2, 4, 8):
        if drives > args.drives:
            break
        heaven = Heaven(_parallel_config(drives))
        _run_parallel_scenario(heaven)
        stats = heaven.library.stats()
        speedup = (
            heaven.parallel_device_seconds / heaven.parallel_makespan_seconds
            if heaven.parallel_makespan_seconds > 0
            else 1.0
        )
        table.add(
            drives,
            f"{heaven.clock.now:.1f}",
            f"{heaven.parallel_makespan_seconds:.1f}",
            f"{heaven.parallel_device_seconds:.1f}",
            f"{speedup:.2f}x",
            f"{stats.time_robot_wait_s:.1f}",
            stats.exchanges,
        )
    table.print()
    print("\nspeedup = device work / makespan, measured from the event log "
          "(1-drive staging bypasses the executor: makespan 0 by design)")
    return 0


def cmd_demo(_args: argparse.Namespace) -> int:
    heaven = Heaven(_demo_config())
    report, cells, read_report, result = _run_demo_scenario(heaven)
    print(f"archived {report.bytes_written / MB:.1f} MB as "
          f"{report.segments_written} super-tiles in "
          f"{report.virtual_seconds:.1f} virtual s")
    print(f"subset read: {cells.nbytes / 1024:.0f} KB useful, "
          f"{read_report.bytes_from_tape / MB:.1f} MB from tape, "
          f"{read_report.virtual_seconds:.1f} virtual s")
    print(f"january mean via RasQL: {result[0].scalar():.2f} "
          f"(answered from the precomputed catalog: "
          f"{heaven.precomputed.stats.answered_pure > 0})")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run a scenario under one root span and print its full trace."""
    make_config, runner = _SCENARIOS[args.scenario]
    heaven = Heaven(make_config(), observability=True)
    with heaven.tracer.span(f"scenario.{args.scenario}"):
        runner(heaven)
    roots = heaven.tracer.roots
    if args.jsonl:
        print(spans_to_jsonl(roots, include_wall=args.wall))
        return 0
    print(render_span_tree(roots))
    print()
    print(render_flamegraph(roots))
    if args.wall:
        print()
        print(render_flamegraph(roots, clock="wall"))
        print()
        print(render_divergence(roots))
    print()
    print(render_leaf_table(roots))
    leaf_sum = sum(t.seconds for t in leaf_totals(roots).values())
    total = heaven.clock.now
    share = 100.0 * leaf_sum / total if total > 0 else 100.0
    print(f"\nleaf virtual seconds: {leaf_sum:.3f} of {total:.3f} total "
          f"({share:.2f} % attributed)")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Run a scenario and print the metrics registry as Prometheus text."""
    make_config, runner = _SCENARIOS[args.scenario]
    heaven = Heaven(make_config(), observability=True)
    runner(heaven)
    print(prometheus_text(heaven.obs.metrics), end="")
    # Trailer: human-readable state the raw series don't make obvious, kept
    # as comments so the output stays valid Prometheus exposition text.
    log = heaven.clock.log
    print(f"# eventlog: {len(log)} events retained, "
          f"{log.dropped} dropped (bounded mode)")
    print(f"# metrics registry: {len(heaven.obs.metrics)} instruments")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Run a scenario under the wall-clock profiler and print hot spots."""
    make_config, runner = _SCENARIOS[args.scenario]
    heaven = Heaven(make_config(), observability=True)
    profiler = WallProfiler(
        heaven.tracer,
        mode=args.mode,
        interval_s=args.interval_ms / 1000.0,
    )
    with heaven.tracer.span(f"scenario.{args.scenario}"):
        with profiler:
            runner(heaven)
    profile = profiler.profile
    print(f"profiler mode: {profile.unit} "
          f"({'SIGALRM sampling' if profile.unit == 'seconds' else 'deterministic call ticks'}), "
          f"{profile.samples} samples")
    print()
    print(render_phase_breakdown(profile))
    print()
    print(render_hot_functions(profile, top=args.top))
    print()
    print(render_profile_flamegraph(profile))
    print()
    print(render_divergence(heaven.tracer.roots))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the wall-clock benchmark suite and write BENCH_<name>.json."""
    from .bench.suite import run_suite, suite_names

    names = args.benchmarks or None
    try:
        results = run_suite(
            names,
            repetitions=args.repetitions,
            warmup=args.warmup,
            scale=args.scale,
            out_dir=args.out_dir,
            progress=lambda line: print(line, file=sys.stderr),
        )
    except ValueError as error:
        print(f"bench: {error}", file=sys.stderr)
        return 2
    table = ResultTable(
        f"Wall-clock benchmarks ({args.repetitions} reps, warmup "
        f"{args.warmup}, scale {args.scale})",
        ["benchmark", "median [ms]", "p95 [ms]", "IQR [ms]", "MB/s"],
    )
    for result in results:
        stats = result.stats
        throughput = result.throughput_mb_s
        table.add(
            result.name,
            f"{stats['median_s'] * 1000:.2f}",
            f"{stats['p95_s'] * 1000:.2f}",
            f"{stats['iqr_s'] * 1000:.2f}",
            f"{throughput:.1f}" if throughput is not None else "-",
        )
    table.print()
    calibration = results[0].environment["calibration_s"] if results else 0.0
    print(f"\ncalibration workload: {calibration * 1000:.1f} ms "
          f"(normalises scores across machines)")
    print(f"known benchmarks: {', '.join(suite_names())}")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from .arrays import ArrayStorage
    from .dbms import Database
    from .tertiary import SimClock, TapeLibrary

    profile = _profile(args.profile, args.media_gb)
    table = ResultTable(
        f"Export of a {args.object_mb} MB object ({args.tile_kb} KB tiles, "
        f"{profile.name})",
        ["path", "segments", "virtual s", "MB/s"],
    )
    for mode in ("coupled", "tct"):
        clock = SimClock()
        storage = ArrayStorage(Database(clock, retain_payload=False))
        library = TapeLibrary(profile, clock=clock, retain_payload=False)
        storage.create_collection("c")
        mdd = _make_object(args.object_mb, args.tile_kb, args.dims)
        storage.insert_object("c", mdd)
        if mode == "coupled":
            report = CoupledExporter(storage, library).export(mdd)
        else:
            super_tiles = star_partition(mdd, args.super_tile_mb * MB)
            plan = ClusteredPlacement().plan(super_tiles, library)
            report = TCTExporter(storage, library).export(mdd, plan)
        table.add(mode, report.segments_written, report.virtual_seconds,
                  report.throughput_mb_s)
    table.print()
    return 0


def cmd_retrieval(args: argparse.Namespace) -> int:
    profile = _profile(args.profile, args.media_gb)
    heaven = Heaven(
        HeavenConfig(
            tape_profile=profile,
            super_tile_bytes=args.super_tile_mb * MB,
            disk_cache_bytes=args.cache_mb * MB,
            disk_cache_policy=args.policy,
            retain_payload=False,
        )
    )
    heaven.create_collection("c")
    mdd = _make_object(args.object_mb, args.tile_kb, args.dims)
    heaven.insert("c", mdd)
    heaven.archive("c", "obj")
    heaven.library.unmount_all()
    rng = np.random.default_rng(args.seed)
    table = ResultTable(
        f"{args.queries} subcube queries at {100 * args.selectivity:.0f} % "
        f"selectivity ({args.object_mb} MB object, {profile.name})",
        ["query", "useful [MB]", "from tape [MB]", "virtual s"],
    )
    for index in range(args.queries):
        region = subcube(mdd.domain, args.selectivity, rng)
        _cells, report = heaven.read_with_report("c", "obj", region)
        table.add(index + 1, report.bytes_useful / MB,
                  report.bytes_from_tape / MB, report.virtual_seconds)
    table.print()
    stats = heaven.disk_cache.stats
    print(f"\ndisk cache: {stats.hits}/{stats.lookups} hits, "
          f"{stats.evictions} evictions; total virtual time "
          f"{heaven.clock.now:.1f} s")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a scenario under a seeded fault plan and summarise recovery."""
    make_config, runner = _SCENARIOS[args.scenario]
    plan = FaultPlan(
        seed=args.seed,
        spec=FaultSpec(
            mount_failure_rate=args.mount_fail_rate,
            media_error_rate=args.media_error_rate,
            robot_jam_rate=args.robot_jam_rate,
            drive_stall_rate=args.drive_stall_rate,
        ),
    )
    config = dataclasses.replace(
        make_config(), fault_plan=plan, num_drives=args.drives
    )
    heaven = Heaven(config)
    outcome = 0
    try:
        runner(heaven)
    except StorageError as error:
        print(f"scenario aborted: {type(error).__name__}: {error}")
        outcome = 1
    recovery = heaven.library.recovery
    table = ResultTable(
        f"Chaos run of {args.scenario!r} (seed {args.seed}, "
        f"{args.drives} drives)",
        ["counter", "value"],
    )
    for site, injected in sorted(plan.stats.injected.items()):
        table.add(f"faults injected [{site}]", injected)
    table.add("fault penalty [virtual s]", plan.stats.penalty_seconds)
    table.add("retries", recovery.retries)
    table.add("drive failovers", recovery.failovers)
    table.add("backoff [virtual s]", recovery.backoff_seconds)
    table.add("retry budget exhausted", recovery.exhausted)
    table.add("degraded reads served", heaven.degraded_reads_served)
    table.add("total virtual time [s]", heaven.clock.now)
    table.print()
    return outcome


def cmd_multiquery(args: argparse.Namespace) -> int:
    """Fused admission run vs N independent serial users, side by side."""
    from .core.admission import AdmissionController, QuerySpec

    mdd = _make_object(args.object_mb, 512, 3)
    queries = _multiquery_queries(mdd, args.interactive)

    # Baseline: each query is an independent user with its own HEAVEN
    # instance — everyone pays their own staging from tape.
    serial_bytes = serial_exchanges = 0
    serial_latencies = {}
    for name, region, _offset, _weight in queries:
        solo = Heaven(_multiquery_config())
        solo.create_collection("c")
        solo.insert("c", _make_object(args.object_mb, 512, 3))
        solo.archive("c", "obj")
        solo.library.unmount_all()
        _cells, report = solo.read_with_report("c", "obj", region)
        serial_bytes += report.bytes_from_tape
        serial_exchanges += report.exchanges
        serial_latencies[name] = report.virtual_seconds

    # Fused: the same queries admitted concurrently into one instance.
    heaven = Heaven(_multiquery_config())
    heaven.create_collection("c")
    heaven.insert("c", _make_object(args.object_mb, 512, 3))
    heaven.archive("c", "obj")
    heaven.library.unmount_all()
    now = heaven.clock.now
    specs = [
        QuerySpec(collection="c", object_name="obj", region=region,
                  arrival_s=now + offset, weight=weight, name=name)
        for name, region, offset, weight in queries
    ]
    controller = AdmissionController(heaven, holdback_s=args.holdback)
    _outputs, fused = controller.run(specs)

    per_query = ResultTable(
        "Per-query view (fused admission run)",
        ["query", "tape share [MB]", "latency [s]", "serial latency [s]"],
    )
    for spec, qreport, latency in zip(specs, fused.queries, fused.latencies_s):
        per_query.add(
            spec.label,
            f"{qreport.bytes_from_tape / MB:.1f}",
            f"{latency:.1f}",
            f"{serial_latencies[spec.name]:.1f}",
        )
    per_query.print()

    table = ResultTable(
        f"{len(specs)} concurrent queries: fused sweeps vs independent users",
        ["metric", "fused", "serial sum"],
    )
    table.add("bytes from tape [MB]", f"{fused.bytes_from_tape / MB:.1f}",
              f"{serial_bytes / MB:.1f}")
    table.add("media exchanges", fused.exchanges, serial_exchanges)
    table.add("elevator sweeps", fused.sweeps, "-")
    table.add("segments fused", fused.fused_segments, "-")
    table.add("fusion saved [MB]", f"{fused.fusion_saved_bytes / MB:.1f}", "-")
    table.add("fusion saved exchanges", fused.fusion_saved_exchanges, "-")
    table.add("max staging wait [s]", f"{fused.max_wait_s:.1f}", "-")
    table.add("hold-back spent [s]", f"{fused.holdback_seconds:.1f}", "-")
    table.add("arrivals absorbed by hold-back", fused.holdback_absorbed, "-")
    table.add("makespan [s]", f"{fused.makespan_s:.1f}", "-")
    table.print()

    saved_bytes = serial_bytes - fused.bytes_from_tape
    saved_ex = serial_exchanges - fused.exchanges
    print(
        f"\ncross-query fusion: {saved_bytes / MB:.1f} MB and "
        f"{saved_ex} exchange(s) less tape traffic than "
        f"{len(specs)} independent serial users"
    )
    ok = fused.bytes_from_tape < serial_bytes and fused.exchanges < serial_exchanges
    if not ok:
        print("WARNING: fused run did not beat independent serial users")
    return 0 if ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Simulated SN/DN service cluster: concurrent multi-tenant reads.

    Builds ``--nodes`` data nodes (fresh HEAVEN instances populated
    identically), serves an open-loop stream of tenant reads through the
    service node, checks every answer byte-identical against a
    single-node reference ``Heaven.read``, and demonstrates 429-style
    quota rejection for an over-budget tenant.
    """
    import asyncio

    from .errors import QuotaExceededError, ServiceError
    from .service import ServiceCluster

    def setup(heaven: Heaven) -> None:
        heaven.create_collection("climate")
        obj = climate_object(
            "temp",
            ClimateGrid(120, 60, 6, 8),
            seed=2,
            tiling=RegularTiling((30, 30, 3, 4)),
        )
        heaven.insert("climate", obj)
        heaven.archive("climate", "temp")
        heaven.library.unmount_all()

    reference = Heaven(_service_config())
    setup(reference)
    domain = reference.collection("climate").get("temp").domain

    cluster = ServiceCluster.build(
        _service_config,
        setup,
        nodes=args.nodes,
        objects=[("climate", "temp")],
    )
    tenants = [f"tenant{index}" for index in range(max(1, args.tenants))]
    for tenant in tenants:
        cluster.register_tenant(tenant)
    # One over-budget tenant demonstrates the 429 path: its byte quota
    # covers roughly one read at the configured selectivity.
    quota_bytes = int(domain.cell_count * DOUBLE.size_bytes * args.selectivity)
    cluster.register_tenant("capped", max_bytes=max(1, quota_bytes))

    rng = np.random.default_rng(args.seed)
    spacing_v = 0.5
    plan = []
    for index in range(args.requests):
        tenant = tenants[index % len(tenants)]
        region = subcube(domain, args.selectivity, rng)
        plan.append((tenant, region, index * spacing_v))
    capped_regions = [subcube(domain, args.selectivity, rng) for _ in range(3)]

    results = []
    rejected = 0

    async def body():
        nonlocal rejected
        outcomes = await asyncio.gather(
            *(
                cluster.sn.read(
                    f"token-{tenant}", "climate", "temp", str(region),
                    arrival_v=arrival,
                )
                for tenant, region, arrival in plan
            ),
            return_exceptions=True,
        )
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                raise outcome
            results.append(outcome)
        for region in capped_regions:
            try:
                results.append(
                    await cluster.sn.read(
                        "token-capped", "climate", "temp", str(region)
                    )
                )
            except QuotaExceededError:
                rejected += 1

    try:
        cluster.run(body)
    except ServiceError as error:
        print(f"serve aborted: {type(error).__name__}: {error}")
        return 1

    identical = 0
    for result, (tenant, region, _arrival) in zip(
        results, plan + [("capped", r, 0.0) for r in capped_regions]
    ):
        expected = reference.read("climate", "temp", region)
        if np.array_equal(result.cells, expected):
            identical += 1

    table = ResultTable(
        f"Service reads over {args.nodes} data node(s) "
        f"({len(tenants)} tenants + 1 capped)",
        ["request", "tenant", "shards", "useful [KB]", "latency [virtual s]"],
    )
    for result in results:
        table.add(
            result.request_id,
            result.tenant,
            len(set(result.shards)),
            f"{result.bytes_useful / 1024:.0f}",
            f"{result.latency_v:.2f}",
        )
    table.print()

    served = len(results)
    makespan = max((r.completion_v for r in results), default=0.0)
    qps = served / makespan if makespan > 0 else 0.0
    latencies = sorted(r.latency_v for r in results)
    p95 = latencies[min(len(latencies) - 1, int(0.95 * len(latencies)))] if latencies else 0.0
    print(f"\nserved {served} request(s), {identical} byte-identical to the "
          f"single-node reference")
    print(f"virtual throughput: {qps:.2f} q/s over {makespan:.1f} s makespan, "
          f"p95 latency {p95:.2f} s")
    usage = cluster.tenants.usage("capped")
    print(f"quota: tenant 'capped' ({quota_bytes} bytes budget) had "
          f"{rejected} request(s) rejected 429-style "
          f"(registry counted {usage.rejected})")
    if identical != served:
        print("ERROR: service answers diverged from the reference read")
        return 1
    if rejected == 0:
        print("WARNING: quota demo produced no rejection")
    return 0


def cmd_simtest(args: argparse.Namespace) -> int:
    """Run one simulation program; shrink + write artifacts on failure."""
    from .simtest import (
        default_still_fails,
        generate_program,
        replay_json,
        run_program,
        shrink_program,
        write_repro_artifacts,
    )

    if args.replay:
        with open(args.replay, encoding="utf-8") as handle:
            text = handle.read()
        result = replay_json(text, mutate=args.mutate)
        program = result.program
        rerun = lambda: replay_json(text, mutate=args.mutate)  # noqa: E731
    else:
        program = generate_program(args.seed, args.ops)
        result = run_program(program, mutate=args.mutate)
        rerun = lambda: run_program(program, mutate=args.mutate)  # noqa: E731
    config = program.config
    print(
        f"simtest: seed={program.seed} ops={len(program.ops)} "
        f"drives={config.num_drives} policy={config.policy} "
        f"mixins={','.join(config.fault_mixins) or 'none'} "
        f"mutate={args.mutate or 'none'}"
    )
    print(f"run: {result.summary()}")
    print(f"event digest:  {result.event_digest}")
    print(f"report digest: {result.report_digest}")
    if args.check_determinism:
        second = rerun()
        identical = (
            second.event_digest == result.event_digest
            and second.report_digest == result.report_digest
        )
        print(f"determinism: {'ok — digests identical' if identical else 'DIVERGED'}")
        if not identical:
            return 1
    if not result.violations:
        if args.expect_fail:
            print("expected a violation but the run was clean", file=sys.stderr)
            return 1
        return 0
    outcome = shrink_program(program, result, default_still_fails(args.mutate))
    print(
        f"shrunk {outcome.original_ops} -> {outcome.minimized_ops} op(s) "
        f"in {outcome.runs} candidate run(s)"
    )
    for violation in outcome.result.violations:
        print(f"  - {violation.describe()}")
    for path in write_repro_artifacts(outcome.result, args.out, mutate=args.mutate):
        print(f"wrote {path}")
    if args.expect_fail:
        if outcome.minimized_ops <= 10:
            print("expected failure found and minimized — mutation smoke ok")
            return 0
        print(
            f"violation found but repro stayed at {outcome.minimized_ops} ops "
            "(> 10): shrinker regression",
            file=sys.stderr,
        )
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HEAVEN reproduction: simulated cost exploration",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="show modelled devices and knobs")
    sub.add_parser("demo", help="run the end-to-end demo scenario")

    trace = sub.add_parser(
        "trace", help="run a scenario with tracing on and print the span tree"
    )
    trace.add_argument("scenario", nargs="?", default="demo",
                       choices=sorted(_SCENARIOS))
    trace.add_argument("--jsonl", action="store_true",
                       help="dump spans as JSONL instead of ASCII rendering")
    trace.add_argument("--wall", action="store_true",
                       help="include host wall-clock times (JSONL fields, "
                            "wall flamegraph, divergence table)")

    stats = sub.add_parser(
        "stats", help="run a scenario and print Prometheus-style metrics"
    )
    stats.add_argument("scenario", nargs="?", default="demo",
                       choices=sorted(_SCENARIOS))

    profile = sub.add_parser(
        "profile",
        help="run a scenario under the wall-clock profiler and print hot "
             "functions, phase breakdown and wall/virtual divergence",
    )
    profile.add_argument("scenario", nargs="?", default="demo",
                         choices=sorted(_SCENARIOS))
    profile.add_argument("--mode", default="auto",
                         choices=("auto", "signal", "deterministic"),
                         help="sampling mode (auto prefers SIGALRM, falls "
                              "back to deterministic call ticks)")
    profile.add_argument("--interval-ms", type=float, default=5.0,
                         help="sampling interval for signal mode")
    profile.add_argument("--top", type=int, default=10,
                         help="hot functions to list")

    bench = sub.add_parser(
        "bench",
        help="run the curated wall-clock benchmark suite and write "
             "BENCH_<name>.json result files",
    )
    bench.add_argument("benchmarks", nargs="*",
                       help="subset of benchmarks to run (default: all)")
    bench.add_argument("--repetitions", type=int, default=5,
                       help="timed repetitions per benchmark")
    bench.add_argument("--warmup", type=int, default=1,
                       help="discarded warmup repetitions")
    bench.add_argument("--scale", default="full", choices=("full", "smoke"),
                       help="workload size (smoke is for fast self-tests)")
    bench.add_argument("--out-dir", default=".",
                       help="directory for BENCH_<name>.json files")

    chaos = sub.add_parser(
        "chaos", help="run a scenario under seeded fault injection"
    )
    chaos.add_argument("scenario", nargs="?", default="retrieval",
                       choices=sorted(_SCENARIOS))
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault plan seed (same seed = same faults)")
    chaos.add_argument("--mount-fail-rate", type=float, default=0.2)
    chaos.add_argument("--media-error-rate", type=float, default=0.05)
    chaos.add_argument("--robot-jam-rate", type=float, default=0.05)
    chaos.add_argument("--drive-stall-rate", type=float, default=0.1)
    chaos.add_argument("--drives", type=int, default=2,
                       help="library drives (failover needs at least 2)")

    par = sub.add_parser(
        "parallel", help="stage one batch at several drive counts"
    )
    par.add_argument("--drives", type=int, default=4,
                     help="largest drive count tried (1, 2, 4, 8 up to this)")

    multi = sub.add_parser(
        "multiquery",
        help="concurrent queries through the admission layer vs serial users",
    )
    multi.add_argument("--object-mb", type=int, default=64)
    multi.add_argument("--interactive", type=int, default=4,
                       help="interactive subwindow queries beside the scan")
    multi.add_argument("--holdback", type=float, default=0.0,
                       help="anticipatory hold-back window [virtual s]")

    serve = sub.add_parser(
        "serve",
        help="simulated SN/DN service cluster: concurrent multi-tenant "
             "reads over sharded data nodes",
    )
    serve.add_argument("--nodes", type=int, default=4,
                       help="data nodes (each owns a hash-ring shard)")
    serve.add_argument("--requests", type=int, default=8,
                       help="open-loop tenant reads to serve")
    serve.add_argument("--tenants", type=int, default=2,
                       help="unconstrained tenants issuing the reads")
    serve.add_argument("--selectivity", type=float, default=0.05,
                       help="subcube selectivity of each read")
    serve.add_argument("--seed", type=int, default=0,
                       help="workload seed (regions and tenant order)")

    sim = sub.add_parser(
        "simtest",
        help="deterministic whole-system simulation against an in-memory oracle",
    )
    sim.add_argument("--seed", type=int, default=0,
                     help="workload seed (same seed = same program and run)")
    sim.add_argument("--ops", type=int, default=60,
                     help="operations to generate")
    sim.add_argument("--replay", metavar="FILE",
                     help="replay a saved program JSON instead of generating")
    sim.add_argument("--mutate", choices=MUTATIONS,
                     help="inject a known bug (harness self-test)")
    sim.add_argument("--check-determinism", action="store_true",
                     help="run twice and require identical digests")
    sim.add_argument("--expect-fail", action="store_true",
                     help="exit 0 only if a violation is found and shrunk "
                          "to at most 10 operations")
    sim.add_argument("--out", default=".simtest-failures",
                     help="directory for repro artifacts on failure")

    export = sub.add_parser("export", help="compare coupled vs TCT export")
    retrieval = sub.add_parser("retrieval", help="run a retrieval scenario")
    for command in (export, retrieval):
        command.add_argument("--object-mb", type=int, default=256)
        command.add_argument("--tile-kb", type=int, default=512)
        command.add_argument("--super-tile-mb", type=int, default=16)
        command.add_argument("--dims", type=int, default=3, choices=(1, 2, 3, 4))
        command.add_argument("--profile", default="DLT-7000",
                             choices=sorted(TAPE_PROFILES))
        command.add_argument("--media-gb", type=float, default=2.0,
                             help="scale media capacity (GB); 0 = native")
    retrieval.add_argument("--selectivity", type=float, default=0.05)
    retrieval.add_argument("--queries", type=int, default=5)
    retrieval.add_argument("--cache-mb", type=int, default=256)
    retrieval.add_argument("--policy", default="lru", choices=policy_names())
    retrieval.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command in ("export", "retrieval") and args.media_gb == 0:
        args.media_gb = None
    handlers = {
        "info": cmd_info,
        "demo": cmd_demo,
        "trace": cmd_trace,
        "stats": cmd_stats,
        "profile": cmd_profile,
        "bench": cmd_bench,
        "chaos": cmd_chaos,
        "parallel": cmd_parallel,
        "multiquery": cmd_multiquery,
        "serve": cmd_serve,
        "simtest": cmd_simtest,
        "export": cmd_export,
        "retrieval": cmd_retrieval,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
