"""MDD objects: the logical array abstraction of the array DBMS.

An :class:`MDD` (multidimensional discrete data, RasDaMan's term) couples a
spatial domain and cell type with a tiled physical representation.  Cells
can come from three places, tried in order per tile:

1. the tile's in-memory payload,
2. a *resolver* installed by the storage layer (disk BLOBs, or HEAVEN's
   cache/tape hierarchy),
3. the object's lazy :class:`~repro.arrays.cellsource.CellSource`.

This lets one code path serve in-memory arrays, disk-resident arrays and
tape-archived arrays — the transparency HEAVEN promises its users.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..errors import DomainError, TilingError
from .celltype import CellType, DOUBLE
from .cellsource import CellSource, ZeroSource
from .index import GridIndex, TileIndex, build_index
from .minterval import MInterval
from .tile import Tile
from .tiling import RegularTiling, TilingScheme, validate_tiling

#: Resolver installed by storage layers: materialises one tile's cells.
TileResolver = Callable[["MDD", Tile], np.ndarray]


class MDD:
    """One multidimensional array object.

    Args:
        name: object name, unique within its collection.
        domain: spatial domain (inclusive bounds per axis).
        cell_type: cell base type.
        tiling: tiling scheme; default regular tiles of 64 cells per axis.
        source: lazy cell source; defaults to zeros.
    """

    def __init__(
        self,
        name: str,
        domain: MInterval,
        cell_type: CellType = DOUBLE,
        tiling: Optional[TilingScheme] = None,
        source: Optional[CellSource] = None,
    ) -> None:
        self.name = name
        self.domain = domain
        self.cell_type = cell_type
        self.tiling = tiling if tiling is not None else RegularTiling(
            tuple(min(64, axis.extent) for axis in domain.axes)
        )
        self.source: Optional[CellSource] = source if source is not None else ZeroSource()
        self.resolver: Optional[TileResolver] = None
        #: hook called with the region before any assembled read; storage
        #: layers use it to batch-stage all needed tiles in one pass.  It
        #: may return a zero-argument *release* callable, invoked after the
        #: read assembled — HEAVEN uses this to keep staged segments pinned
        #: in its disk cache until their tiles were actually consumed.
        self.prepare_read: Optional[Callable[[MInterval], Optional[Callable[[], None]]]] = None
        #: set by the storage manager when the object is persisted
        self.oid: Optional[int] = None

        tile_domains = self.tiling.tile_domains(domain, cell_type)
        self.tiles: Dict[int, Tile] = {
            tile_id: Tile(tile_id, tile_domain, cell_type)
            for tile_id, tile_domain in enumerate(tile_domains)
        }
        tile_shape = (
            tuple(self.tiling.tile_shape)  # type: ignore[attr-defined]
            if isinstance(self.tiling, RegularTiling)
            else None
        )
        self.index: TileIndex = build_index(domain, tile_domains, tile_shape)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_array(
        cls,
        name: str,
        cells: np.ndarray,
        origin: Optional[Sequence[int]] = None,
        cell_type: Optional[CellType] = None,
        tiling: Optional[TilingScheme] = None,
    ) -> "MDD":
        """Wrap a concrete numpy array as a fully materialised MDD."""
        if cell_type is None:
            cell_type = CellType(name=str(cells.dtype), dtype=cells.dtype)
        domain = MInterval.from_shape(cells.shape, origin)
        mdd = cls(name, domain, cell_type, tiling=tiling, source=None)
        mdd.source = None
        for tile in mdd.tiles.values():
            # Snapshot, never alias: a view of the caller's (writable)
            # array would defeat the copy-on-write guard in write() and a
            # later mdd.write(...) would silently mutate the user's input.
            tile.set_payload(cells[tile.domain.to_slices(domain)].copy())
        return mdd

    # -- geometry ---------------------------------------------------------------

    @property
    def dimension(self) -> int:
        return self.domain.dimension

    @property
    def shape(self) -> tuple:
        return self.domain.shape

    @property
    def size_bytes(self) -> int:
        """Logical object size: cells x cell size."""
        return self.domain.cell_count * self.cell_type.size_bytes

    def tile_count(self) -> int:
        return len(self.tiles)

    def tiles_for(self, region: MInterval) -> List[Tile]:
        """Tiles intersecting *region*, in tile-id order."""
        clipped = self.domain.intersection(region)
        if clipped is None:
            return []
        return [self.tiles[tile_id] for tile_id in self.index.intersecting(clipped)]

    def validate(self) -> None:
        """Self-check: tiles exactly cover the domain without overlap."""
        validate_tiling(self.domain, [t.domain for t in self.tiles.values()])

    # -- cell access -----------------------------------------------------------------

    def materialize_tile(self, tile: Tile) -> np.ndarray:
        """Cells of one tile, pulling from payload, resolver or source."""
        if tile.payload is not None:
            return tile.payload
        if self.resolver is not None:
            cells = self.resolver(self, tile)
        elif self.source is not None:
            cells = self.source.region(tile.domain, self.cell_type)
        else:
            raise DomainError(
                f"object {self.name!r}: tile {tile.tile_id} has no payload, "
                "resolver or source"
            )
        if tuple(cells.shape) != tile.domain.shape:
            raise DomainError(
                f"resolver/source returned shape {tuple(cells.shape)} for tile "
                f"domain {tile.domain.shape}"
            )
        return np.asarray(cells, dtype=self.cell_type.dtype)

    def read(self, region: MInterval) -> np.ndarray:
        """Assemble the cells of *region* (must lie inside the domain).

        The scatter into the result array is vectorized: slice bounds come
        from plain integer arithmetic (no per-tile interval-object
        algebra), tiles fully interior to the region assign without source
        slicing, and runs of pointer-adjacent interior tiles — the layout
        zero-copy decode produces for contiguous super-tile runs — are
        assembled in ONE strided copy instead of one assignment per tile.
        """
        if not self.domain.contains(region):
            raise DomainError(
                f"read region {region} outside object domain {self.domain}"
            )
        release = None
        if self.prepare_read is not None:
            release = self.prepare_read(region)
        try:
            out = np.empty(region.shape, dtype=self.cell_type.dtype)
            self._scatter_into(out, region)
            return out
        finally:
            if callable(release):
                release()

    def _scatter_into(self, out: np.ndarray, region: MInterval) -> None:
        """Copy every tile's overlap with *region* into *out* (vectorized)."""
        r_bounds = [(axis.lo, axis.hi) for axis in region.axes]
        # (cells, dst slices, src slices or None when the tile is interior)
        run: List[tuple] = []
        for tile in self.tiles_for(region):
            dst = []
            src = []
            interior = True
            for (r_lo, r_hi), t_axis in zip(r_bounds, tile.domain.axes):
                t_lo, t_hi = t_axis.lo, t_axis.hi
                o_lo = t_lo if t_lo > r_lo else r_lo
                o_hi = t_hi if t_hi < r_hi else r_hi
                dst.append(slice(o_lo - r_lo, o_hi - r_lo + 1))
                src.append(slice(o_lo - t_lo, o_hi - t_lo + 1))
                if o_lo != t_lo or o_hi != t_hi:
                    interior = False
            cells = self.materialize_tile(tile)
            entry = (cells, tuple(dst), None if interior else tuple(src))
            if run and not _extends_run(run[-1], entry):
                _flush_run(out, run)
                run.clear()
            run.append(entry)
        if run:
            _flush_run(out, run)

    def read_all(self) -> np.ndarray:
        """The whole object as one array (use only for small objects)."""
        return self.read(self.domain)

    def write(self, region: MInterval, cells: np.ndarray) -> None:
        """Overwrite the cells of *region* across all affected tiles."""
        if not self.domain.contains(region):
            raise DomainError(
                f"write region {region} outside object domain {self.domain}"
            )
        cells = np.asarray(cells, dtype=self.cell_type.dtype)
        if tuple(cells.shape) != region.shape:
            raise DomainError(
                f"write: cells shape {tuple(cells.shape)} != region {region.shape}"
            )
        for tile in self.tiles_for(region):
            if tile.payload is None:
                materialized = self.materialize_tile(tile)
                if not materialized.flags.writeable:
                    # Resolver handed out a frozen cache array: mutating it
                    # in place would corrupt the cache, so take a copy.
                    materialized = materialized.copy()
                tile.set_payload(materialized)
            elif not tile.payload.flags.writeable:
                tile.set_payload(tile.payload.copy())
            overlap = tile.domain.intersection(region)
            assert overlap is not None
            tile.write(overlap, cells[overlap.to_slices(region)])

    def materialize_all(self) -> None:
        """Force every tile's payload into memory."""
        for tile in self.tiles.values():
            if tile.payload is None:
                tile.set_payload(self.materialize_tile(tile))

    def drop_payloads(self) -> None:
        """Release all in-memory cells (re-readable via resolver/source)."""
        for tile in self.tiles.values():
            tile.drop_payload()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MDD({self.name!r}, [{self.domain}], {self.cell_type.name}, "
            f"{self.tile_count()} tiles)"
        )


def _extends_run(prev: tuple, entry: tuple) -> bool:
    """Can *entry* join *prev*'s merged scatter run?

    A run is a sequence of tiles that are (a) fully interior to the read
    region, (b) adjacent along the last (fastest-varying) axis in array
    space, and (c) **pointer-adjacent in memory** — true for read-only
    decode views over one contiguous super-tile segment run.  Such a run
    scatters with one strided copy in :func:`_flush_run`.
    """
    p_cells, p_dst, p_src = prev
    c_cells, c_dst, c_src = entry
    if p_src is not None or c_src is not None:
        return False  # clipped tiles scatter individually
    if p_cells.shape != c_cells.shape or p_cells.dtype != c_cells.dtype:
        return False
    if not (p_cells.flags.c_contiguous and c_cells.flags.c_contiguous):
        return False
    if c_cells.ctypes.data != p_cells.ctypes.data + p_cells.nbytes:
        return False
    if p_dst[:-1] != c_dst[:-1]:
        return False
    return c_dst[-1].start == p_dst[-1].stop


def _flush_run(out: np.ndarray, run: List[tuple]) -> None:
    """Scatter one run of tiles into *out*.

    Single tiles assign directly (interior ones without source slicing);
    a merged run of ``m`` pointer-adjacent tiles becomes ONE strided
    copy: the source is a ``(lead..., m, c)`` strided view spanning all
    ``m`` tile buffers, the destination the matching split of the
    region's last axis — both guaranteed views by construction (axis
    splits never need a copy).
    """
    if len(run) == 1:
        cells, dst, src = run[0]
        out[dst] = cells if src is None else cells[src]
        return
    as_strided = np.lib.stride_tricks.as_strided
    first, first_dst, _src = run[0]
    m = len(run)
    c = first.shape[-1]
    src_view = as_strided(
        first,
        shape=first.shape[:-1] + (m, c),
        strides=first.strides[:-1] + (first.nbytes, first.strides[-1]),
        writeable=False,
    )
    merged_last = slice(first_dst[-1].start, run[-1][1][-1].stop)
    dst_view = out[first_dst[:-1] + (merged_last,)]
    dst_split = as_strided(
        dst_view,
        shape=dst_view.shape[:-1] + (m, c),
        strides=dst_view.strides[:-1]
        + (c * dst_view.strides[-1], dst_view.strides[-1]),
    )
    dst_split[...] = src_view


class Collection:
    """A named set of MDD objects (RasDaMan collection)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._objects: Dict[str, MDD] = {}

    def add(self, mdd: MDD) -> MDD:
        if mdd.name in self._objects:
            raise TilingError(
                f"collection {self.name!r} already holds object {mdd.name!r}"
            )
        self._objects[mdd.name] = mdd
        return mdd

    def remove(self, name: str) -> MDD:
        try:
            return self._objects.pop(name)
        except KeyError:
            raise DomainError(
                f"object {name!r} not in collection {self.name!r}"
            ) from None

    def get(self, name: str) -> MDD:
        try:
            return self._objects[name]
        except KeyError:
            raise DomainError(
                f"object {name!r} not in collection {self.name!r}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._objects)

    def objects(self) -> List[MDD]:
        return [self._objects[n] for n in self.names()]

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, name: str) -> bool:
        return name in self._objects

    def __iter__(self):
        return iter(self.objects())
