"""Cell (base) types of the array model, mapped onto numpy dtypes.

Mirrors RasDaMan's base types (char, octet, short, long, float, double, and
struct types like RGB pixels) so workloads can declare the same cell types
the ESTEDI partners used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import CellTypeError


@dataclass(frozen=True)
class CellType:
    """One array base type.

    Attributes:
        name: RasDL-style type name (``"double"``, ``"rgb"``).
        dtype: the numpy dtype cells are materialised with.
    """

    name: str
    dtype: np.dtype

    @property
    def size_bytes(self) -> int:
        """Bytes per cell."""
        return int(self.dtype.itemsize)

    def __str__(self) -> str:
        return self.name


def _scalar(name: str, np_name: str) -> CellType:
    return CellType(name=name, dtype=np.dtype(np_name))


#: RasDaMan-style scalar base types.
BOOL = _scalar("bool", "bool")
CHAR = _scalar("char", "uint8")
OCTET = _scalar("octet", "int8")
SHORT = _scalar("short", "int16")
USHORT = _scalar("ushort", "uint16")
LONG = _scalar("long", "int32")
ULONG = _scalar("ulong", "uint32")
FLOAT = _scalar("float", "float32")
DOUBLE = _scalar("double", "float64")

#: Composite pixel type used by the satellite workloads.
RGB = CellType(
    name="rgb",
    dtype=np.dtype([("r", "uint8"), ("g", "uint8"), ("b", "uint8")]),
)

_REGISTRY: Dict[str, CellType] = {
    t.name: t
    for t in (BOOL, CHAR, OCTET, SHORT, USHORT, LONG, ULONG, FLOAT, DOUBLE, RGB)
}


def register(cell_type: CellType) -> CellType:
    """Add a user-defined cell type (e.g. a struct of measurements)."""
    if cell_type.name in _REGISTRY:
        raise CellTypeError(f"cell type {cell_type.name!r} already registered")
    _REGISTRY[cell_type.name] = cell_type
    return cell_type


def struct_type(name: str, fields: Sequence[Tuple[str, str]]) -> CellType:
    """Define and register a struct cell type from (field, scalar) pairs.

    ``struct_type("wind", [("u", "float"), ("v", "float")])``
    """
    np_fields: List[Tuple[str, np.dtype]] = []
    for field_name, scalar_name in fields:
        scalar = lookup(scalar_name)
        if scalar.dtype.fields is not None:
            raise CellTypeError("struct fields must be scalar types")
        np_fields.append((field_name, scalar.dtype))
    return register(CellType(name=name, dtype=np.dtype(np_fields)))


def lookup(name: str) -> CellType:
    """Resolve a registered cell type by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise CellTypeError(
            f"unknown cell type {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def known_types() -> List[str]:
    return sorted(_REGISTRY)
