"""Tiling strategies: how an MDD's domain is cut into storage tiles.

RasDaMan's physical data model (Kapitel 2.5.3) stores an MDD as a set of
non-overlapping rectangular *tiles*, each persisted as one BLOB.  The tiling
determines everything HEAVEN later optimises: tiles are the atoms that STAR
groups into super-tiles, and tile geometry decides how many tiles a given
query box touches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import TilingError
from .celltype import CellType
from .minterval import MInterval, SInterval


class TilingScheme:
    """Strategy object producing the tile domains of an object domain."""

    def tile_domains(self, domain: MInterval, cell_type: CellType) -> List[MInterval]:
        """Partition *domain* into disjoint covering boxes (row-major order)."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable parameterisation for catalogs and reports."""
        raise NotImplementedError


@dataclass(frozen=True)
class RegularTiling(TilingScheme):
    """Fixed tile shape, the common RasDaMan default.

    Attributes:
        tile_shape: cell extents of one tile per dimension; border tiles are
            clipped to the domain.
    """

    tile_shape: Sequence[int]

    def tile_domains(self, domain: MInterval, cell_type: CellType) -> List[MInterval]:
        if len(self.tile_shape) != domain.dimension:
            raise TilingError(
                f"tile shape {tuple(self.tile_shape)} does not match "
                f"{domain.dimension}-D domain"
            )
        if any(e < 1 for e in self.tile_shape):
            raise TilingError(f"tile extents must be >= 1: {tuple(self.tile_shape)}")
        return domain.grid(list(self.tile_shape))

    def describe(self) -> str:
        return f"regular{tuple(self.tile_shape)}"


@dataclass(frozen=True)
class SizeBoundedTiling(TilingScheme):
    """Near-cubic tiles bounded by a byte budget (RasDaMan's size tiling).

    The per-axis extent is the largest ``e`` with
    ``e**dim * cell_size <= max_tile_bytes``, clipped to the domain — giving
    compact tiles of roughly the requested size without the caller knowing
    the dimensionality.
    """

    max_tile_bytes: int

    def tile_domains(self, domain: MInterval, cell_type: CellType) -> List[MInterval]:
        if self.max_tile_bytes < cell_type.size_bytes:
            raise TilingError(
                f"max_tile_bytes {self.max_tile_bytes} smaller than one cell "
                f"({cell_type.size_bytes} B)"
            )
        cells_budget = self.max_tile_bytes // cell_type.size_bytes
        extent = max(1, int(math.floor(cells_budget ** (1.0 / domain.dimension))))
        shape = [min(extent, axis.extent) for axis in domain.axes]
        return domain.grid(shape)

    def describe(self) -> str:
        return f"size({self.max_tile_bytes}B)"


@dataclass(frozen=True)
class DirectionalTiling(TilingScheme):
    """Explicit split points per axis (RasDaMan's directional tiling).

    Attributes:
        split_points: for each dimension, the interior coordinates at which
            the axis is cut.  A dimension with no split points stays whole —
            the tiling users pick when accesses always slice particular axes.
    """

    split_points: Sequence[Sequence[int]]

    def tile_domains(self, domain: MInterval, cell_type: CellType) -> List[MInterval]:
        if len(self.split_points) != domain.dimension:
            raise TilingError("split_points must list one sequence per dimension")
        per_axis: List[List[SInterval]] = []
        for axis, points in zip(domain.axes, self.split_points):
            cuts = sorted(set(int(p) for p in points))
            for cut in cuts:
                if not (axis.lo < cut <= axis.hi):
                    raise TilingError(
                        f"split point {cut} outside axis {axis} interior"
                    )
            bounds = [axis.lo] + cuts + [axis.hi + 1]
            per_axis.append(
                [SInterval(bounds[i], bounds[i + 1] - 1) for i in range(len(bounds) - 1)]
            )
        boxes: List[MInterval] = []

        def recurse(dim: int, chosen: List[SInterval]) -> None:
            if dim == len(per_axis):
                boxes.append(MInterval(list(chosen)))
                return
            for part in per_axis[dim]:
                chosen.append(part)
                recurse(dim + 1, chosen)
                chosen.pop()

        recurse(0, [])
        return boxes

    def describe(self) -> str:
        return f"directional({[list(p) for p in self.split_points]})"


@dataclass(frozen=True)
class AlignedTiling(TilingScheme):
    """Byte-budgeted tiles stretched along preferred access axes.

    Attributes:
        max_tile_bytes: byte budget per tile.
        preferred_axes: axes (by position) that dominate the access pattern;
            tiles extend fully along them and the budget is spent on the
            remaining axes.  With all axes preferred this degenerates to one
            tile per object.
    """

    max_tile_bytes: int
    preferred_axes: Sequence[int] = ()

    def tile_domains(self, domain: MInterval, cell_type: CellType) -> List[MInterval]:
        preferred = set(self.preferred_axes)
        for axis_index in preferred:
            if not 0 <= axis_index < domain.dimension:
                raise TilingError(f"preferred axis {axis_index} out of range")
        budget_cells = max(1, self.max_tile_bytes // cell_type.size_bytes)
        fixed_cells = 1
        for axis_index in preferred:
            fixed_cells *= domain.axes[axis_index].extent
        remaining_axes = [i for i in range(domain.dimension) if i not in preferred]
        shape = [0] * domain.dimension
        for axis_index in preferred:
            shape[axis_index] = domain.axes[axis_index].extent
        if remaining_axes:
            per_axis_budget = max(1, budget_cells // max(1, fixed_cells))
            extent = max(
                1, int(math.floor(per_axis_budget ** (1.0 / len(remaining_axes))))
            )
            for axis_index in remaining_axes:
                shape[axis_index] = min(extent, domain.axes[axis_index].extent)
        return domain.grid(shape)

    def describe(self) -> str:
        return f"aligned({self.max_tile_bytes}B, axes={tuple(self.preferred_axes)})"


def validate_tiling(domain: MInterval, tiles: List[MInterval]) -> None:
    """Assert the tile set is a disjoint exact cover of *domain*.

    Used by property tests and the storage layer's self-checks.

    Raises:
        TilingError: coverage or disjointness is violated.
    """
    total = 0
    for i, tile in enumerate(tiles):
        if not domain.contains(tile):
            raise TilingError(f"tile {tile} leaks outside domain {domain}")
        total += tile.cell_count
        for other in tiles[i + 1 :]:
            if tile.intersects(other):
                raise TilingError(f"tiles {tile} and {other} overlap")
    if total != domain.cell_count:
        raise TilingError(
            f"tiles cover {total} cells, domain has {domain.cell_count}"
        )
