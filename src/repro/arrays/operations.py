"""Array operations (Kapitel 2.5.5): trimming, sections, induced ops,
condensers and scaling.

Operations work on :class:`MArray` values — a spatial domain plus the
materialised cells of exactly that region.  The query executor reads the
minimal region from an :class:`~repro.arrays.mdd.MDD` (possibly via HEAVEN's
tape hierarchy) and then evaluates pure functions from this module, so
operation semantics are testable without any storage attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from ..errors import DomainError, QueryError
from .minterval import MInterval, SInterval


@dataclass(frozen=True)
class MArray:
    """A value: cells anchored at an absolute spatial domain."""

    domain: MInterval
    cells: np.ndarray

    def __post_init__(self) -> None:
        if tuple(self.cells.shape) != self.domain.shape:
            raise DomainError(
                f"cells shape {tuple(self.cells.shape)} != domain {self.domain.shape}"
            )

    @property
    def dimension(self) -> int:
        return self.domain.dimension

    def scalar(self) -> Union[int, float, bool]:
        """The single cell of a 0-extent array (for condenser results)."""
        if self.cells.size != 1:
            raise QueryError(f"array of {self.cells.size} cells is not a scalar")
        return self.cells.reshape(()).item()


ScalarOrArray = Union[MArray, int, float, bool]


# -- geometric operations ----------------------------------------------------


def trim(value: MArray, region: MInterval) -> MArray:
    """Restrict to *region* (dimensionality preserved)."""
    clipped = value.domain.intersection(region)
    if clipped is None:
        raise DomainError(f"trim region {region} disjoint from {value.domain}")
    return MArray(clipped, value.cells[clipped.to_slices(value.domain)])


def section(value: MArray, axis: int, position: int) -> MArray:
    """Fix one dimension to *position*, reducing dimensionality by one.

    A section through the last remaining axis yields a 1-D array of one
    cell rather than a true scalar — callers use :meth:`MArray.scalar`.
    """
    if not 0 <= axis < value.dimension:
        raise DomainError(f"section axis {axis} out of range")
    if not value.domain[axis].contains(position):
        raise DomainError(
            f"section position {position} outside axis {value.domain[axis]}"
        )
    slices = [slice(None)] * value.dimension
    slices[axis] = value.domain[axis].lo * 0 + (position - value.domain[axis].lo)
    cells = value.cells[tuple(slices)]
    remaining = [a for i, a in enumerate(value.domain.axes) if i != axis]
    if not remaining:
        remaining = [SInterval(0, 0)]
        cells = cells.reshape((1,))
    return MArray(MInterval(remaining), cells)


def shift(value: MArray, offsets: Sequence[int]) -> MArray:
    """Translate the domain (cells unchanged)."""
    return MArray(value.domain.translate(offsets), value.cells)


def extend(value: MArray, region: MInterval, fill: float = 0.0) -> MArray:
    """Grow the domain to *region*, filling new cells with *fill*."""
    if not region.contains(value.domain):
        raise DomainError(f"extend target {region} does not contain {value.domain}")
    cells = np.full(region.shape, fill, dtype=value.cells.dtype)
    cells[value.domain.to_slices(region)] = value.cells
    return MArray(region, cells)


# -- induced operations -------------------------------------------------------

_BINARY_OPS: dict = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "=": np.equal,
    "!=": np.not_equal,
    "and": np.logical_and,
    "or": np.logical_or,
}

_UNARY_OPS: dict = {
    "-": np.negative,
    "not": np.logical_not,
    "abs": np.abs,
    "sqrt": np.sqrt,
    "exp": np.exp,
    "log": np.log,
    "sin": np.sin,
    "cos": np.cos,
}


def induced_binary(op: str, left: ScalarOrArray, right: ScalarOrArray) -> ScalarOrArray:
    """Cell-wise binary operation; scalars broadcast against arrays.

    Two arrays must share the same domain (RasDaMan's induction rule).
    """
    fn = _BINARY_OPS.get(op)
    if fn is None:
        raise QueryError(f"unknown binary operation {op!r}")
    if isinstance(left, MArray) and isinstance(right, MArray):
        if left.domain != right.domain:
            raise DomainError(
                f"induced {op}: domains differ ({left.domain} vs {right.domain})"
            )
        return MArray(left.domain, fn(left.cells, right.cells))
    if isinstance(left, MArray):
        return MArray(left.domain, fn(left.cells, right))
    if isinstance(right, MArray):
        return MArray(right.domain, fn(left, right.cells))
    return fn(left, right).item() if hasattr(fn(left, right), "item") else fn(left, right)


def induced_unary(op: str, value: ScalarOrArray) -> ScalarOrArray:
    """Cell-wise unary operation."""
    fn = _UNARY_OPS.get(op)
    if fn is None:
        raise QueryError(f"unknown unary operation {op!r}")
    if isinstance(value, MArray):
        return MArray(value.domain, fn(value.cells))
    result = fn(value)
    return result.item() if hasattr(result, "item") else result


def cast(value: ScalarOrArray, dtype: str) -> ScalarOrArray:
    """Cell-type cast (RasQL's ``(double) a`` style)."""
    np_dtype = np.dtype(
        {"double": "float64", "float": "float32", "long": "int32", "short": "int16",
         "char": "uint8", "octet": "int8", "bool": "bool", "ulong": "uint32",
         "ushort": "uint16"}.get(dtype, dtype)
    )
    if isinstance(value, MArray):
        return MArray(value.domain, value.cells.astype(np_dtype))
    return np_dtype.type(value).item()


# -- condensers ------------------------------------------------------------------

_CONDENSERS: dict = {
    "add_cells": np.sum,
    "avg_cells": np.mean,
    "max_cells": np.max,
    "min_cells": np.min,
    "count_cells": None,  # special: counts true cells of a boolean array
    "some_cells": np.any,
    "all_cells": np.all,
    "var_cells": np.var,
    "stddev_cells": np.std,
}


def condense(name: str, value: MArray) -> Union[int, float, bool]:
    """Reduce an array to one scalar (RasQL condenser functions)."""
    if name not in _CONDENSERS:
        raise QueryError(f"unknown condenser {name!r}")
    if name == "count_cells":
        if value.cells.dtype != np.bool_:
            raise QueryError("count_cells requires a boolean array")
        return int(np.count_nonzero(value.cells))
    result = _CONDENSERS[name](value.cells)
    return result.item()


def condenser_names() -> List[str]:
    return sorted(_CONDENSERS)


# -- scaling ---------------------------------------------------------------------


def scale_down(value: MArray, factors: Sequence[int]) -> MArray:
    """Integer-factor downsampling by block averaging (image pyramids).

    The result domain starts at the scaled origin; trailing cells that do
    not fill a complete block are dropped (standard pyramid behaviour).
    """
    if len(factors) != value.dimension:
        raise DomainError("one scale factor per dimension required")
    if any(f < 1 for f in factors):
        raise DomainError(f"scale factors must be >= 1: {factors}")
    new_axes = []
    slices = []
    for axis, factor in zip(value.domain.axes, factors):
        blocks = axis.extent // factor
        if blocks < 1:
            raise DomainError(
                f"axis {axis} too small for scale factor {factor}"
            )
        new_axes.append(SInterval(axis.lo // factor, axis.lo // factor + blocks - 1))
        slices.append(slice(0, blocks * factor))
    trimmed = value.cells[tuple(slices)]
    work = trimmed.astype(np.float64)
    for dim, factor in enumerate(factors):
        if factor == 1:
            continue
        shape = list(work.shape)
        shape[dim] = shape[dim] // factor
        shape.insert(dim + 1, factor)
        work = work.reshape(shape).mean(axis=dim + 1)
    return MArray(MInterval(new_axes), work.astype(value.cells.dtype))


# -- the general condenser (marray-style reductions over regions) -----------------


def region_aggregate(
    value: MArray,
    op: str,
    axis: Optional[int] = None,
) -> Union[MArray, int, float, bool]:
    """Aggregate along one axis (or fully when *axis* is None).

    Supported ops: ``sum``, ``avg``, ``max``, ``min``.
    """
    np_ops: dict = {"sum": np.sum, "avg": np.mean, "max": np.max, "min": np.min}
    if op not in np_ops:
        raise QueryError(f"unknown aggregate {op!r}")
    if axis is None:
        return np_ops[op](value.cells).item()
    if not 0 <= axis < value.dimension:
        raise DomainError(f"aggregate axis {axis} out of range")
    cells = np_ops[op](value.cells, axis=axis)
    remaining = [a for i, a in enumerate(value.domain.axes) if i != axis]
    if not remaining:
        remaining = [SInterval(0, 0)]
        cells = cells.reshape((1,))
    return MArray(MInterval(remaining), cells)
