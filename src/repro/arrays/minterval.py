"""Spatial domains of the array model: SInterval and MInterval.

Follows RasDaMan's logical data model (Kapitel 2.5.2): an *SInterval* is a
closed integer interval ``[lo, hi]``; an *MInterval* is the cross product of
one SInterval per dimension and describes the spatial domain of an MDD
object, a tile, or a query box.  Bounds are inclusive on both sides, as in
RasQL ``a[0:9,100:199]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import DomainError


@dataclass(frozen=True, order=True)
class SInterval:
    """Closed one-dimensional integer interval ``[lo, hi]``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise DomainError(f"empty interval [{self.lo}:{self.hi}]")

    @property
    def extent(self) -> int:
        """Number of integer points in the interval."""
        return self.hi - self.lo + 1

    def contains(self, point: int) -> bool:
        return self.lo <= point <= self.hi

    def contains_interval(self, other: "SInterval") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    def intersects(self, other: "SInterval") -> bool:
        return self.lo <= other.hi and other.lo <= self.hi

    def intersection(self, other: "SInterval") -> Optional["SInterval"]:
        """Overlap with *other*, or None when disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return SInterval(lo, hi)

    def hull(self, other: "SInterval") -> "SInterval":
        """Smallest interval covering both."""
        return SInterval(min(self.lo, other.lo), max(self.hi, other.hi))

    def translate(self, offset: int) -> "SInterval":
        return SInterval(self.lo + offset, self.hi + offset)

    def split_regular(self, chunk: int) -> List["SInterval"]:
        """Partition into chunks of *chunk* points (last may be shorter)."""
        if chunk < 1:
            raise DomainError(f"chunk extent must be >= 1, got {chunk}")
        out = []
        lo = self.lo
        while lo <= self.hi:
            hi = min(lo + chunk - 1, self.hi)
            out.append(SInterval(lo, hi))
            lo = hi + 1
        return out

    def __str__(self) -> str:
        return f"{self.lo}:{self.hi}"


IndexLike = Union[int, Tuple[int, int], SInterval]


class MInterval:
    """Multidimensional closed interval — the spatial domain type.

    Immutable; supports the geometric algebra the tiling, index and framing
    layers are built on (intersection, hull, containment, iteration over a
    grid of sub-boxes, translation, numpy slice conversion).
    """

    __slots__ = ("_axes",)

    def __init__(self, axes: Iterable[SInterval]) -> None:
        axes = tuple(axes)
        if not axes:
            raise DomainError("an MInterval needs at least one dimension")
        object.__setattr__(self, "_axes", axes)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("MInterval is immutable")

    # -- constructors -------------------------------------------------------

    @classmethod
    def of(cls, *bounds: IndexLike) -> "MInterval":
        """Build from per-axis specs: ints, (lo, hi) pairs, or SIntervals.

        ``MInterval.of((0, 99), (0, 359))`` — a 100 x 360 domain.
        """
        axes = []
        for bound in bounds:
            if isinstance(bound, SInterval):
                axes.append(bound)
            elif isinstance(bound, int):
                axes.append(SInterval(bound, bound))
            else:
                lo, hi = bound
                axes.append(SInterval(int(lo), int(hi)))
        return cls(axes)

    @classmethod
    def parse(cls, text: str) -> "MInterval":
        """Inverse of ``str``: parse ``"0:99,10:49"`` into an MInterval."""
        axes = []
        for part in text.split(","):
            lo_text, _, hi_text = part.partition(":")
            try:
                lo = int(lo_text)
                hi = int(hi_text) if hi_text else lo
            except ValueError:
                raise DomainError(f"cannot parse interval {part!r}") from None
            axes.append(SInterval(lo, hi))
        return cls(axes)

    @classmethod
    def from_shape(cls, shape: Sequence[int], origin: Optional[Sequence[int]] = None) -> "MInterval":
        """Domain of the given *shape* anchored at *origin* (default zeros)."""
        if origin is None:
            origin = [0] * len(shape)
        if len(origin) != len(shape):
            raise DomainError("origin and shape dimensionality differ")
        return cls(
            SInterval(int(o), int(o) + int(s) - 1) for o, s in zip(origin, shape)
        )

    # -- basics ----------------------------------------------------------------

    @property
    def axes(self) -> Tuple[SInterval, ...]:
        return self._axes

    @property
    def dimension(self) -> int:
        return len(self._axes)

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(axis.extent for axis in self._axes)

    @property
    def cell_count(self) -> int:
        count = 1
        for axis in self._axes:
            count *= axis.extent
        return count

    @property
    def origin(self) -> Tuple[int, ...]:
        return tuple(axis.lo for axis in self._axes)

    @property
    def high(self) -> Tuple[int, ...]:
        return tuple(axis.hi for axis in self._axes)

    def __getitem__(self, dim: int) -> SInterval:
        return self._axes[dim]

    def __iter__(self) -> Iterator[SInterval]:
        return iter(self._axes)

    def __len__(self) -> int:
        return len(self._axes)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MInterval) and self._axes == other._axes

    def __hash__(self) -> int:
        return hash(self._axes)

    def __repr__(self) -> str:
        return f"MInterval[{self}]"

    def __str__(self) -> str:
        return ",".join(str(axis) for axis in self._axes)

    # -- geometry ------------------------------------------------------------------

    def _check_dim(self, other: "MInterval") -> None:
        if self.dimension != other.dimension:
            raise DomainError(
                f"dimensionality mismatch: {self.dimension} vs {other.dimension}"
            )

    def contains_point(self, point: Sequence[int]) -> bool:
        if len(point) != self.dimension:
            raise DomainError("point dimensionality mismatch")
        return all(axis.contains(p) for axis, p in zip(self._axes, point))

    def contains(self, other: "MInterval") -> bool:
        self._check_dim(other)
        return all(a.contains_interval(b) for a, b in zip(self._axes, other._axes))

    def intersects(self, other: "MInterval") -> bool:
        self._check_dim(other)
        return all(a.intersects(b) for a, b in zip(self._axes, other._axes))

    def intersection(self, other: "MInterval") -> Optional["MInterval"]:
        self._check_dim(other)
        axes = []
        for a, b in zip(self._axes, other._axes):
            overlap = a.intersection(b)
            if overlap is None:
                return None
            axes.append(overlap)
        return MInterval(axes)

    def hull(self, other: "MInterval") -> "MInterval":
        self._check_dim(other)
        return MInterval(a.hull(b) for a, b in zip(self._axes, other._axes))

    def translate(self, offsets: Sequence[int]) -> "MInterval":
        if len(offsets) != self.dimension:
            raise DomainError("offset dimensionality mismatch")
        return MInterval(a.translate(o) for a, o in zip(self._axes, offsets))

    def grid(self, chunk_shape: Sequence[int]) -> List["MInterval"]:
        """Regular partition into sub-boxes of *chunk_shape* (row-major order)."""
        if len(chunk_shape) != self.dimension:
            raise DomainError("chunk shape dimensionality mismatch")
        per_axis = [
            axis.split_regular(int(c)) for axis, c in zip(self._axes, chunk_shape)
        ]
        boxes: List[MInterval] = []

        def recurse(dim: int, chosen: List[SInterval]) -> None:
            if dim == len(per_axis):
                boxes.append(MInterval(list(chosen)))
                return
            for part in per_axis[dim]:
                chosen.append(part)
                recurse(dim + 1, chosen)
                chosen.pop()

        recurse(0, [])
        return boxes

    # -- numpy bridging -------------------------------------------------------------

    def to_slices(self, within: "MInterval") -> Tuple[slice, ...]:
        """Numpy slices of *self* relative to the array anchored at *within*.

        Raises:
            DomainError: *self* is not fully inside *within*.
        """
        if not within.contains(self):
            raise DomainError(f"{self} not contained in {within}")
        return tuple(
            slice(a.lo - w.lo, a.hi - w.lo + 1)
            for a, w in zip(self._axes, within._axes)
        )

    def relative_origin(self, within: "MInterval") -> Tuple[int, ...]:
        """Offset of self's origin inside *within* (for assembly copies)."""
        if not within.contains(self):
            raise DomainError(f"{self} not contained in {within}")
        return tuple(a.lo - w.lo for a, w in zip(self._axes, within._axes))
