"""Tiles: the unit of array storage (one BLOB each in the base DBMS)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import DomainError
from .celltype import CellType
from .minterval import MInterval


@dataclass
class Tile:
    """One rectangular piece of an MDD.

    The payload is materialised lazily: a tile created over a lazy object
    carries no array until the first read pulls it from the object's
    :class:`~repro.arrays.cellsource.CellSource` (or from disk/tape via the
    storage layers).

    Attributes:
        tile_id: id unique within the owning object, assigned in tiling
            (row-major) order — HEAVEN's clustering relies on this order.
        domain: absolute spatial extent of the tile.
        cell_type: the owning object's cell type.
        payload: the cells, shaped ``domain.shape``, or None when not
            materialised.
    """

    tile_id: int
    domain: MInterval
    cell_type: CellType
    payload: Optional[np.ndarray] = None

    @property
    def size_bytes(self) -> int:
        """Storage size of the tile (independent of materialisation)."""
        return self.domain.cell_count * self.cell_type.size_bytes

    @property
    def materialized(self) -> bool:
        return self.payload is not None

    def set_payload(self, cells: np.ndarray) -> None:
        """Attach cells; shape must match the tile domain exactly."""
        if tuple(cells.shape) != self.domain.shape:
            raise DomainError(
                f"tile {self.tile_id}: payload shape {tuple(cells.shape)} != "
                f"domain shape {self.domain.shape}"
            )
        payload = np.ascontiguousarray(cells, dtype=self.cell_type.dtype)
        if not payload.flags.writeable:
            # Resolvers may hand out read-only frombuffer views.
            payload = payload.copy()
        self.payload = payload

    def drop_payload(self) -> None:
        """Release the in-memory cells (they can be re-read from storage)."""
        self.payload = None

    def to_bytes(self) -> bytes:
        """Serialise the payload row-major (requires materialisation)."""
        if self.payload is None:
            raise DomainError(f"tile {self.tile_id} has no payload to serialise")
        return self.payload.tobytes(order="C")

    def from_bytes(self, raw: bytes) -> None:
        """Restore the payload from its serialised form."""
        expected = self.size_bytes
        if len(raw) != expected:
            raise DomainError(
                f"tile {self.tile_id}: {len(raw)} B given, expected {expected} B"
            )
        cells = np.frombuffer(raw, dtype=self.cell_type.dtype).reshape(self.domain.shape)
        self.payload = cells.copy()  # frombuffer is read-only; tiles are writable

    def read(self, region: MInterval) -> np.ndarray:
        """Cells of *region* (must lie inside the tile; needs payload)."""
        if self.payload is None:
            raise DomainError(f"tile {self.tile_id} is not materialised")
        return self.payload[region.to_slices(self.domain)]

    def write(self, region: MInterval, cells: np.ndarray) -> None:
        """Overwrite the cells of *region* (must lie inside the tile)."""
        if self.payload is None:
            raise DomainError(f"tile {self.tile_id} is not materialised")
        self.payload[region.to_slices(self.domain)] = cells
