"""Array storage manager: persists MDDs into the base DBMS.

Reproduces RasDaMan's physical layer (Kapitel 2.5.3): each tile becomes one
BLOB in the base RDBMS, catalog tables record objects, collections and tile
locations.  Installed resolvers route later cell reads through the BLOB
store, charging realistic disk costs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..dbms import Column, ColumnType, Database
from ..errors import ArrayError, DomainError
from .celltype import CellType, lookup as lookup_cell_type
from .mdd import MDD, Collection
from .minterval import MInterval
from .tile import Tile
from .tiling import RegularTiling

COLLECTIONS_TABLE = "ras_collections"
OBJECTS_TABLE = "ras_mddobjects"
TILES_TABLE = "ras_tiles"


class ArrayStorage:
    """Catalog + BLOB persistence of arrays over a :class:`Database`."""

    def __init__(self, db: Database) -> None:
        self.db = db
        self._next_oid = 1
        self._ensure_catalog()
        #: cache of open collections (shared MDD instances)
        self._collections: Dict[str, Collection] = {}

    # -- catalog DDL ----------------------------------------------------------

    def _ensure_catalog(self) -> None:
        existing = set(self.db.tables())
        if COLLECTIONS_TABLE not in existing:
            self.db.create_table(
                COLLECTIONS_TABLE,
                [Column("name", ColumnType.TEXT, nullable=False)],
                primary_key="name",
            )
        if OBJECTS_TABLE not in existing:
            self.db.create_table(
                OBJECTS_TABLE,
                [
                    Column("oid", ColumnType.INTEGER, nullable=False),
                    Column("collection", ColumnType.TEXT, nullable=False),
                    Column("name", ColumnType.TEXT, nullable=False),
                    Column("domain", ColumnType.TEXT, nullable=False),
                    Column("cell_type", ColumnType.TEXT, nullable=False),
                    Column("tiling", ColumnType.TEXT, nullable=False),
                ],
                primary_key="oid",
            )
            self.db.table(OBJECTS_TABLE).create_index("name")
        if TILES_TABLE not in existing:
            self.db.create_table(
                TILES_TABLE,
                [
                    Column("key", ColumnType.TEXT, nullable=False),
                    Column("oid", ColumnType.INTEGER, nullable=False),
                    Column("tile_id", ColumnType.INTEGER, nullable=False),
                    Column("domain", ColumnType.TEXT, nullable=False),
                    Column("blob_oid", ColumnType.INTEGER, nullable=False),
                    Column("size", ColumnType.INTEGER, nullable=False),
                ],
                primary_key="key",
            )
            self.db.table(TILES_TABLE).create_index("oid")

    # -- collections ---------------------------------------------------------

    def create_collection(self, name: str) -> Collection:
        self.db.insert(COLLECTIONS_TABLE, {"name": name})
        collection = Collection(name)
        self._collections[name] = collection
        return collection

    def collection(self, name: str) -> Collection:
        if name in self._collections:
            return self._collections[name]
        if not self.db.table(COLLECTIONS_TABLE).find_by("name", name):
            raise ArrayError(f"collection {name!r} does not exist")
        collection = Collection(name)
        for row in self.db.table(OBJECTS_TABLE).scan(
            lambda r: r["collection"] == name
        ):
            collection.add(self._rebuild_mdd(row[1]))
        self._collections[name] = collection
        return collection

    def collection_names(self) -> List[str]:
        return [r["name"] for r in self.db.select(COLLECTIONS_TABLE, order_by="name")]

    def drop_collection(self, name: str) -> None:
        collection = self.collection(name)
        for mdd in list(collection):
            self.delete_object(name, mdd.name)
        self.db.delete_rows(COLLECTIONS_TABLE, lambda r: r["name"] == name)
        del self._collections[name]

    # -- object persistence ------------------------------------------------------

    def insert_object(self, collection_name: str, mdd: MDD) -> int:
        """Persist *mdd* into a collection: catalog rows + one BLOB per tile.

        Tile payloads are materialised (from the object's source) and written
        through the BLOB store.  When the database runs payload-free
        (``retain_payload=False``), only sizes are stored and later reads
        fall back to the object's deterministic source.  Returns the oid.
        """
        collection = self.collection(collection_name)
        oid = self._next_oid
        self._next_oid += 1
        with self.db.transaction():
            self.db.insert(
                OBJECTS_TABLE,
                {
                    "oid": oid,
                    "collection": collection_name,
                    "name": mdd.name,
                    "domain": str(mdd.domain),
                    "cell_type": mdd.cell_type.name,
                    "tiling": mdd.tiling.describe(),
                },
            )
            for tile in mdd.tiles.values():
                payload: Optional[bytes] = None
                if self.db.blobs.retain_payload:
                    cells = mdd.materialize_tile(tile)
                    payload = np.ascontiguousarray(
                        cells, dtype=mdd.cell_type.dtype
                    ).tobytes(order="C")
                blob_oid = self.db.put_blob(payload, size=tile.size_bytes)
                self.db.insert(
                    TILES_TABLE,
                    {
                        "key": f"{oid}:{tile.tile_id}",
                        "oid": oid,
                        "tile_id": tile.tile_id,
                        "domain": str(tile.domain),
                        "blob_oid": blob_oid,
                        "size": tile.size_bytes,
                    },
                )
        mdd.oid = oid
        mdd.resolver = self._make_resolver(oid)
        if mdd.name not in collection:
            collection.add(mdd)
        return oid

    def delete_object(self, collection_name: str, object_name: str) -> None:
        """Remove object catalog rows and its tile BLOBs."""
        collection = self.collection(collection_name)
        mdd = collection.get(object_name)
        if mdd.oid is None:
            raise ArrayError(f"object {object_name!r} was never persisted")
        oid = mdd.oid
        with self.db.transaction():
            for _rid, row in self.db.table(TILES_TABLE).scan(
                lambda r: r["oid"] == oid
            ):
                # HEAVEN releases tile BLOBs when migrating to tape; the
                # catalog row then points at freed storage — skip those.
                if row["blob_oid"] in self.db.blobs:
                    self.db.delete_blob(row["blob_oid"])
            self.db.delete_rows(TILES_TABLE, lambda r: r["oid"] == oid)
            self.db.delete_rows(OBJECTS_TABLE, lambda r: r["oid"] == oid)
        collection.remove(object_name)
        mdd.oid = None
        mdd.resolver = None

    def tile_rows(self, oid: int) -> List[dict]:
        """Tile catalog rows of one object, ordered by tile id."""
        rows = [row for _rid, row in self.db.table(TILES_TABLE).scan(
            lambda r: r["oid"] == oid
        )]
        rows.sort(key=lambda r: r["tile_id"])
        return rows

    def object_row(self, oid: int) -> dict:
        found = self.db.table(OBJECTS_TABLE).find_pk(oid)
        if found is None:
            raise ArrayError(f"no object with oid {oid}")
        return found[1]

    def blob_oid_of(self, oid: int, tile_id: int) -> int:
        found = self.db.table(TILES_TABLE).find_pk(f"{oid}:{tile_id}")
        if found is None:
            raise ArrayError(f"tile {tile_id} of object {oid} not stored")
        return found[1]["blob_oid"]

    # -- internals ------------------------------------------------------------------

    def _make_resolver(self, oid: int):
        """Resolver reading one tile's cells back from the BLOB store."""

        def resolve(mdd: MDD, tile: Tile) -> np.ndarray:
            blob_oid = self.blob_oid_of(oid, tile.tile_id)
            raw = self.db.blobs.get(blob_oid)
            if raw is not None:
                return np.frombuffer(raw, dtype=mdd.cell_type.dtype).reshape(
                    tile.domain.shape
                )
            if mdd.source is not None:
                return mdd.source.region(tile.domain, mdd.cell_type)
            raise DomainError(
                f"tile {tile.tile_id} of {mdd.name!r}: no payload retained and "
                "no source to regenerate from"
            )

        return resolve

    def _rebuild_mdd(self, row: dict) -> MDD:
        """Reconstruct an MDD shell from catalog rows (payloads stay lazy)."""
        domain = MInterval.parse(row["domain"])
        cell_type = lookup_cell_type(row["cell_type"])
        tiling_text = row["tiling"]
        tiling = None
        if tiling_text.startswith("regular("):
            shape = tuple(
                int(p) for p in tiling_text[len("regular(") : -1].split(",") if p.strip()
            )
            tiling = RegularTiling(shape)
        mdd = MDD(row["name"], domain, cell_type, tiling=tiling)
        expected = {t.tile_id: t.domain for t in mdd.tiles.values()}
        for tile_row in self.tile_rows(row["oid"]):
            stored_domain = MInterval.parse(tile_row["domain"])
            if expected.get(tile_row["tile_id"]) != stored_domain:
                raise ArrayError(
                    f"catalog tile {tile_row['tile_id']} domain {stored_domain} "
                    f"does not match rebuilt tiling"
                )
        mdd.oid = row["oid"]
        mdd.resolver = self._make_resolver(row["oid"])
        return mdd
