"""Evaluator of the RasQL subset.

The executor keeps MDD references *lazy* while trims and sections accumulate,
and only materialises cells when an operation truly needs them.  That is the
hook HEAVEN plugs into twice:

* reads of a lazy reference fetch only the tiles intersecting the final
  region — through cache and tape when the object is archived;
* condensers over a lazy reference are first offered to a *condenser hook*
  so HEAVEN's precomputed-results catalog can answer them without touching
  tape at all (Kapitel 3.8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ...errors import DomainError, QueryError
from ..mdd import MDD, Collection
from ..minterval import MInterval, SInterval
from ..operations import (
    MArray,
    cast,
    condense,
    condenser_names,
    induced_binary,
    induced_unary,
    scale_down,
    shift,
)
from .ast import (
    BinaryOp,
    CreateCollection,
    DeleteFrom,
    DimSpec,
    DropCollection,
    FieldAccess,
    FromItem,
    FuncCall,
    Node,
    NumberLit,
    Query,
    Statement,
    StringLit,
    Subset,
    UnaryOp,
    Var,
)
from .parser import parse

#: Axis spec of a lazy reference: kept interval or sectioned point.
AxisSpec = Union[SInterval, int]

_CAST_NAMES = {
    "double", "float", "long", "ulong", "short", "ushort", "char", "octet", "bool",
}
_UNARY_FUNCS = {"abs", "sqrt", "exp", "log", "sin", "cos"}


class MDDRef:
    """Lazy view of an MDD: accumulated trims/sections, no cells yet."""

    def __init__(self, mdd: MDD, specs: Optional[List[AxisSpec]] = None) -> None:
        self.mdd = mdd
        self.specs: List[AxisSpec] = (
            specs if specs is not None else list(mdd.domain.axes)
        )
        if len(self.specs) != mdd.domain.dimension:
            raise DomainError("spec list must cover every original dimension")

    # -- geometry -------------------------------------------------------------

    def visible_axes(self) -> List[int]:
        """Original axis positions still visible (not sectioned away)."""
        return [i for i, s in enumerate(self.specs) if isinstance(s, SInterval)]

    def visible_domain(self) -> MInterval:
        axes = [s for s in self.specs if isinstance(s, SInterval)]
        if not axes:
            # Fully sectioned: a single cell; expose a 1-point pseudo axis.
            return MInterval.of((0, 0))
        return MInterval(axes)

    def full_region(self) -> MInterval:
        """Region in the original dimensionality (sections as 1-point axes)."""
        return MInterval(
            s if isinstance(s, SInterval) else SInterval(s, s) for s in self.specs
        )

    @property
    def dimension(self) -> int:
        return len(self.visible_axes())

    # -- refinement ----------------------------------------------------------------

    def subset(self, dim_specs: Sequence[Tuple[Optional[int], Optional[int], bool]]) -> "MDDRef":
        """Apply ``[...]`` specs (already evaluated to ints) to visible axes."""
        visible = self.visible_axes()
        if len(dim_specs) != len(visible):
            raise QueryError(
                f"subset lists {len(dim_specs)} dimensions, reference has "
                f"{len(visible)}"
            )
        new_specs = list(self.specs)
        for (lo, hi, is_section), axis_index in zip(dim_specs, visible):
            current = self.specs[axis_index]
            assert isinstance(current, SInterval)
            actual_lo = current.lo if lo is None else lo
            actual_hi = current.hi if hi is None else hi
            if not (
                current.contains(actual_lo) and current.contains(actual_hi)
            ):
                raise DomainError(
                    f"subset [{actual_lo}:{actual_hi}] outside axis {current} "
                    f"of object {self.mdd.name!r}"
                )
            if is_section:
                new_specs[axis_index] = actual_lo
            else:
                new_specs[axis_index] = SInterval(actual_lo, actual_hi)
        return MDDRef(self.mdd, new_specs)

    # -- materialisation ---------------------------------------------------------------

    def materialize(self) -> MArray:
        """Read the cells of the accumulated region and squeeze sections."""
        region = self.full_region()
        cells = self.mdd.read(region)
        sectioned = tuple(
            i for i, s in enumerate(self.specs) if not isinstance(s, SInterval)
        )
        if sectioned:
            cells = np.squeeze(cells, axis=sectioned)
        domain = self.visible_domain()
        if cells.ndim == 0:
            cells = cells.reshape((1,))
        return MArray(domain, cells)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MDDRef({self.mdd.name!r}, [{self.full_region()}])"


Value = Union[MArray, MDDRef, MInterval, int, float, bool, str]

#: Hook signature: (condenser name, lazy reference) -> scalar or None.
CondenserHook = Callable[[str, MDDRef], Optional[Union[int, float, bool]]]

#: Extension function: (executor, raw args already evaluated) -> value.
ExtensionFunc = Callable[["QueryExecutor", List[Value]], Value]


@dataclass
class MutationHooks:
    """Callbacks the executor uses for DDL/DML statements.

    HEAVEN binds these to its hierarchy-aware operations (a delete must
    release cache entries and tape segments, not just catalog rows).
    """

    create_collection: Callable[[str], object]
    drop_collection: Callable[[str], None]
    delete_object: Callable[[str, str], None]


@dataclass
class QueryResult:
    """One item of a query result set."""

    value: Union[MArray, int, float, bool, str, MInterval]
    bindings: Dict[str, str] = field(default_factory=dict)

    def scalar(self) -> Union[int, float, bool]:
        if isinstance(self.value, MArray):
            return self.value.scalar()
        if isinstance(self.value, (int, float, bool)):
            return self.value
        raise QueryError(f"result {type(self.value).__name__} is not scalar")


class QueryExecutor:
    """Evaluates parsed queries against a set of named collections."""

    def __init__(
        self,
        collections: Callable[[str], Collection],
        condenser_hook: Optional[CondenserHook] = None,
        scale_hook: Optional[Callable[["MDDRef", List[int]], Optional[MArray]]] = None,
        mutations: Optional[MutationHooks] = None,
        tracer=None,
    ) -> None:
        from ...obs.trace import null_tracer

        self._collections = collections
        self.condenser_hook = condenser_hook
        self.scale_hook = scale_hook
        self.mutations = mutations
        #: span tracer; HEAVEN swaps in its own so query spans parent the
        #: staging spans opened further down the hierarchy
        self.tracer = tracer if tracer is not None else null_tracer
        #: lifetime statement counters (observability metrics)
        self.queries_run = 0
        self.statements_run = 0
        self._extensions: Dict[str, ExtensionFunc] = {}
        self._condensers = set(condenser_names())

    def register_extension(self, name: str, fn: ExtensionFunc) -> None:
        """Add a query-language extension function (HEAVEN adds ``frame``)."""
        lowered = name.lower()
        if lowered in self._extensions:
            raise QueryError(f"extension {name!r} already registered")
        self._extensions[lowered] = fn

    # -- entry points -------------------------------------------------------

    def execute(self, text: str) -> List[QueryResult]:
        """Parse and run a statement.

        SELECT returns one result per qualifying tuple; DDL/DML statements
        return a single result describing what happened.
        """
        statement = parse(text)
        if isinstance(statement, Query):
            self.queries_run += 1
            with self.tracer.span("query", text=text):
                return self.run(statement)
        self.statements_run += 1
        with self.tracer.span("query.statement", text=text):
            return self.run_statement(statement)

    def run_statement(self, statement: Statement) -> List[QueryResult]:
        """Execute a non-SELECT statement through the mutation hooks."""
        if self.mutations is None:
            raise QueryError(
                "this executor is read-only; no mutation hooks installed"
            )
        if isinstance(statement, CreateCollection):
            self.mutations.create_collection(statement.name)
            return [QueryResult(value=f"created collection {statement.name}")]
        if isinstance(statement, DropCollection):
            self.mutations.drop_collection(statement.name)
            return [QueryResult(value=f"dropped collection {statement.name}")]
        if isinstance(statement, DeleteFrom):
            collection = self._collections(statement.collection)
            victims: List[str] = []
            env: Dict[str, MDDRef] = {}
            for mdd in collection.objects():
                if statement.where is not None:
                    env[statement.alias] = MDDRef(mdd)
                    keep = self._to_bool(self.evaluate(statement.where, env))
                    env.pop(statement.alias, None)
                    if not keep:
                        continue
                victims.append(mdd.name)
            for name in victims:
                self.mutations.delete_object(statement.collection, name)
            return [
                QueryResult(
                    value=f"deleted {len(victims)} object(s)",
                    bindings={name: name for name in victims},
                )
            ]
        raise QueryError(f"unsupported statement {type(statement).__name__}")

    def run(self, query: Query) -> List[QueryResult]:
        iterators: List[Tuple[str, List[MDD]]] = []
        for item in query.from_items:
            collection = self._collections(item.collection)
            iterators.append((item.alias, collection.objects()))
        results: List[QueryResult] = []
        self._cross_product(query, iterators, 0, {}, results)
        return results

    def _cross_product(
        self,
        query: Query,
        iterators: List[Tuple[str, List[MDD]]],
        depth: int,
        env: Dict[str, MDDRef],
        results: List[QueryResult],
    ) -> None:
        if depth == len(iterators):
            if query.where is not None:
                keep = self._to_bool(self.evaluate(query.where, env))
                if not keep:
                    return
            value = self.evaluate(query.select, env)
            if isinstance(value, MDDRef):
                value = value.materialize()
            results.append(
                QueryResult(
                    value=value,
                    bindings={alias: ref.mdd.name for alias, ref in env.items()},
                )
            )
            return
        alias, objects = iterators[depth]
        for mdd in objects:
            env[alias] = MDDRef(mdd)
            self._cross_product(query, iterators, depth + 1, env, results)
        env.pop(alias, None)

    # -- evaluation --------------------------------------------------------------

    def evaluate(self, node: Node, env: Dict[str, MDDRef]) -> Value:
        if isinstance(node, NumberLit):
            return node.value
        if isinstance(node, StringLit):
            return node.value
        if isinstance(node, Var):
            if node.name not in env:
                raise QueryError(f"unknown variable {node.name!r}")
            return env[node.name]
        if isinstance(node, Subset):
            return self._eval_subset(node, env)
        if isinstance(node, BinaryOp):
            left = self._dense(self.evaluate(node.left, env))
            right = self._dense(self.evaluate(node.right, env))
            return induced_binary(node.op, left, right)
        if isinstance(node, UnaryOp):
            return induced_unary(node.op, self._dense(self.evaluate(node.operand, env)))
        if isinstance(node, FieldAccess):
            return self._eval_field(node, env)
        if isinstance(node, FuncCall):
            return self._eval_func(node, env)
        raise QueryError(f"cannot evaluate node {type(node).__name__}")

    def _eval_subset(self, node: Subset, env: Dict[str, MDDRef]) -> Value:
        operand = self.evaluate(node.operand, env)
        specs: List[Tuple[Optional[int], Optional[int], bool]] = []
        for spec in node.specs:
            lo = self._to_int(self.evaluate(spec.lo, env)) if spec.lo is not None else None
            hi = self._to_int(self.evaluate(spec.hi, env)) if spec.hi is not None else None
            specs.append((lo, hi, spec.is_section))
        if isinstance(operand, MDDRef):
            return operand.subset(specs)
        if isinstance(operand, MArray):
            return self._subset_marray(operand, specs)
        raise QueryError("subscript applied to a non-array value")

    @staticmethod
    def _subset_marray(
        value: MArray, specs: List[Tuple[Optional[int], Optional[int], bool]]
    ) -> MArray:
        if len(specs) != value.dimension:
            raise QueryError(
                f"subset lists {len(specs)} dimensions, array has {value.dimension}"
            )
        slices: List[Any] = []
        axes: List[SInterval] = []
        for (lo, hi, is_section), axis in zip(specs, value.domain.axes):
            actual_lo = axis.lo if lo is None else lo
            actual_hi = axis.hi if hi is None else hi
            if not (axis.contains(actual_lo) and axis.contains(actual_hi)):
                raise DomainError(f"subset [{actual_lo}:{actual_hi}] outside {axis}")
            if is_section:
                slices.append(actual_lo - axis.lo)
            else:
                slices.append(slice(actual_lo - axis.lo, actual_hi - axis.lo + 1))
                axes.append(SInterval(actual_lo, actual_hi))
        cells = value.cells[tuple(slices)]
        if not axes:
            axes = [SInterval(0, 0)]
            cells = cells.reshape((1,))
        return MArray(MInterval(axes), cells)

    def _eval_field(self, node: FieldAccess, env: Dict[str, MDDRef]) -> Value:
        operand = self._dense(self.evaluate(node.operand, env))
        if not isinstance(operand, MArray):
            raise QueryError("field access on a non-array value")
        if operand.cells.dtype.fields is None or node.field not in operand.cells.dtype.fields:
            raise QueryError(f"cell type has no field {node.field!r}")
        return MArray(operand.domain, operand.cells[node.field])

    def _eval_func(self, node: FuncCall, env: Dict[str, MDDRef]) -> Value:
        name = node.name
        if name in self._extensions:
            args = [self.evaluate(a, env) for a in node.args]
            return self._extensions[name](self, args)
        if name in self._condensers:
            if len(node.args) != 1:
                raise QueryError(f"{name}() takes exactly one argument")
            operand = self.evaluate(node.args[0], env)
            if isinstance(operand, MDDRef) and self.condenser_hook is not None:
                answer = self.condenser_hook(name, operand)
                if answer is not None:
                    return answer
            return condense(name, self._require_array(self._dense(operand), name))
        if name == "sdom":
            operand = self.evaluate(node.args[0], env)
            if isinstance(operand, MDDRef):
                return operand.visible_domain()
            if isinstance(operand, MArray):
                return operand.domain
            raise QueryError("sdom() needs an array argument")
        if name == "name":
            operand = self.evaluate(node.args[0], env)
            if isinstance(operand, MDDRef):
                return operand.mdd.name
            raise QueryError("name() needs an object reference")
        if name == "oid":
            operand = self.evaluate(node.args[0], env)
            if isinstance(operand, MDDRef) and operand.mdd.oid is not None:
                return operand.mdd.oid
            raise QueryError("oid() needs a persisted object reference")
        if name == "scale":
            if len(node.args) < 2:
                raise QueryError("scale(array, f1, f2, ...) needs factors")
            operand = self.evaluate(node.args[0], env)
            factors = [self._to_int(self.evaluate(a, env)) for a in node.args[1:]]
            if isinstance(operand, MDDRef) and self.scale_hook is not None:
                answer = self.scale_hook(operand, factors)
                if answer is not None:
                    return answer
            array = self._require_array(self._dense(operand), "scale")
            return scale_down(array, factors)
        if name == "shift":
            array = self._require_array(
                self._dense(self.evaluate(node.args[0], env)), "shift"
            )
            offsets = [self._to_int(self.evaluate(a, env)) for a in node.args[1:]]
            return shift(array, offsets)
        if name == "overlay":
            if len(node.args) != 2:
                raise QueryError("overlay(top, bottom) takes two arguments")
            top = self._require_array(
                self._dense(self.evaluate(node.args[0], env)), "overlay"
            )
            bottom = self._require_array(
                self._dense(self.evaluate(node.args[1], env)), "overlay"
            )
            if top.domain != bottom.domain:
                raise QueryError("overlay: operand domains differ")
            cells = np.where(top.cells != 0, top.cells, bottom.cells)
            return MArray(top.domain, cells)
        if name in _UNARY_FUNCS:
            return induced_unary(name, self._dense(self.evaluate(node.args[0], env)))
        if name in _CAST_NAMES:
            return cast(self._dense(self.evaluate(node.args[0], env)), name)
        raise QueryError(f"unknown function {name!r}")

    # -- coercion helpers -----------------------------------------------------------

    @staticmethod
    def _dense(value: Value) -> Union[MArray, int, float, bool, str]:
        """Materialise lazy references; leave everything else alone."""
        if isinstance(value, MDDRef):
            return value.materialize()
        return value  # type: ignore[return-value]

    @staticmethod
    def _require_array(value: Value, context: str) -> MArray:
        if not isinstance(value, MArray):
            raise QueryError(f"{context}: expected an array, got {type(value).__name__}")
        return value

    @staticmethod
    def _to_int(value: Value) -> int:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise QueryError(f"expected an integer bound, got {value!r}")
        if isinstance(value, float):
            if not value.is_integer():
                raise QueryError(f"bound {value} is not an integer")
            return int(value)
        return value

    @staticmethod
    def _to_bool(value: Value) -> bool:
        if isinstance(value, MDDRef):
            value = value.materialize()
        if isinstance(value, MArray):
            raise QueryError("WHERE condition must be scalar; use a condenser")
        if isinstance(value, (bool, np.bool_)):
            return bool(value)
        raise QueryError(f"WHERE condition is {type(value).__name__}, not boolean")
