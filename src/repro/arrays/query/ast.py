"""AST node definitions for the RasQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union


class Node:
    """Base class of all AST nodes."""


@dataclass(frozen=True)
class NumberLit(Node):
    value: Union[int, float]


@dataclass(frozen=True)
class StringLit(Node):
    value: str


@dataclass(frozen=True)
class Var(Node):
    """Reference to a FROM-clause alias (an MDD iterator variable)."""

    name: str


@dataclass(frozen=True)
class BinaryOp(Node):
    op: str
    left: Node
    right: Node


@dataclass(frozen=True)
class UnaryOp(Node):
    op: str
    operand: Node


@dataclass(frozen=True)
class FieldAccess(Node):
    """Struct-field selection, e.g. ``img.r``."""

    operand: Node
    field: str


@dataclass(frozen=True)
class DimSpec(Node):
    """One dimension inside ``[...]``.

    ``lo``/``hi`` are expressions or None for an open bound (``*``).
    ``is_section`` marks a single-point spec (``a[5, ...]``), which reduces
    dimensionality.
    """

    lo: Optional[Node]
    hi: Optional[Node]
    is_section: bool


@dataclass(frozen=True)
class Subset(Node):
    """Trimming/section application: ``operand[specs]``."""

    operand: Node
    specs: Tuple[DimSpec, ...]


@dataclass(frozen=True)
class FuncCall(Node):
    name: str
    args: Tuple[Node, ...]


@dataclass(frozen=True)
class FromItem(Node):
    collection: str
    alias: str


@dataclass(frozen=True)
class Query(Node):
    """A full SELECT query."""

    select: Node
    from_items: Tuple[FromItem, ...]
    where: Optional[Node]


@dataclass(frozen=True)
class CreateCollection(Node):
    """``create collection <name>``."""

    name: str


@dataclass(frozen=True)
class DropCollection(Node):
    """``drop collection <name>``."""

    name: str


@dataclass(frozen=True)
class DeleteFrom(Node):
    """``delete from <collection> [as alias] [where cond]``."""

    collection: str
    alias: str
    where: Optional[Node]


#: Every parseable top-level statement.
Statement = Union[Query, CreateCollection, DropCollection, DeleteFrom]
