"""Recursive-descent parser for the RasQL subset.

Grammar (lowercase = nonterminal)::

    statement : query | CREATE COLLECTION IDENT | DROP COLLECTION IDENT
              | DELETE FROM from_item [WHERE expr]
    query     : SELECT expr FROM from_item (',' from_item)* [WHERE expr]
    from_item : IDENT [AS IDENT]
    expr      : or_expr
    or_expr   : and_expr (OR and_expr)*
    and_expr  : cmp_expr (AND cmp_expr)*
    cmp_expr  : add_expr [('<'|'<='|'>'|'>='|'='|'!=') add_expr]
    add_expr  : mul_expr (('+'|'-') mul_expr)*
    mul_expr  : unary (('*'|'/') unary)*
    unary     : ('-'|NOT) unary | postfix
    postfix   : primary ('[' dims ']' | '.' IDENT)*
    primary   : NUMBER | STRING | IDENT '(' [expr (',' expr)*] ')'
              | IDENT | '(' expr ')'
    dims      : dim (',' dim)*
    dim       : bound [':' bound]        -- single bound = section
    bound     : expr | '*'
"""

from __future__ import annotations

from typing import List, Optional

from ...errors import QuerySyntaxError
from .ast import (
    BinaryOp,
    CreateCollection,
    DeleteFrom,
    DimSpec,
    DropCollection,
    FieldAccess,
    FromItem,
    FuncCall,
    Node,
    NumberLit,
    Query,
    Statement,
    StringLit,
    Subset,
    UnaryOp,
    Var,
)
from .lexer import Token, TokenKind, tokenize

_COMPARISONS = {"<", "<=", ">", ">=", "=", "!="}


class Parser:
    """One-shot parser over a token list."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.position = 0

    # -- token helpers -------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        self.position += 1
        return token

    def expect(self, kind: TokenKind, text: Optional[str] = None) -> Token:
        token = self.current
        if token.kind is not kind or (text is not None and token.text != text):
            want = text or kind.value
            raise QuerySyntaxError(
                f"expected {want!r} at position {token.position}, got {token.text!r}"
            )
        return self.advance()

    def accept(self, kind: TokenKind, text: Optional[str] = None) -> Optional[Token]:
        token = self.current
        if token.kind is kind and (text is None or token.text == text):
            return self.advance()
        return None

    # -- grammar ----------------------------------------------------------------

    def parse_statement(self) -> Statement:
        token = self.current
        if token.is_keyword("select"):
            return self.parse_query()
        if token.is_keyword("create"):
            self.advance()
            self.expect(TokenKind.KEYWORD, "collection")
            name = self.expect(TokenKind.IDENT).text
            self.expect(TokenKind.EOF)
            return CreateCollection(name=name)
        if token.is_keyword("drop"):
            self.advance()
            self.expect(TokenKind.KEYWORD, "collection")
            name = self.expect(TokenKind.IDENT).text
            self.expect(TokenKind.EOF)
            return DropCollection(name=name)
        if token.is_keyword("delete"):
            self.advance()
            self.expect(TokenKind.KEYWORD, "from")
            item = self.parse_from_item()
            where = None
            if self.accept(TokenKind.KEYWORD, "where"):
                where = self.parse_expr()
            self.expect(TokenKind.EOF)
            return DeleteFrom(collection=item.collection, alias=item.alias, where=where)
        raise QuerySyntaxError(
            f"expected a statement keyword at position {token.position}, "
            f"got {token.text!r}"
        )

    def parse_query(self) -> Query:
        self.expect(TokenKind.KEYWORD, "select")
        select = self.parse_expr()
        self.expect(TokenKind.KEYWORD, "from")
        from_items = [self.parse_from_item()]
        while self.accept(TokenKind.COMMA):
            from_items.append(self.parse_from_item())
        where = None
        if self.accept(TokenKind.KEYWORD, "where"):
            where = self.parse_expr()
        self.expect(TokenKind.EOF)
        return Query(select=select, from_items=tuple(from_items), where=where)

    def parse_from_item(self) -> FromItem:
        collection = self.expect(TokenKind.IDENT).text
        alias = collection
        if self.accept(TokenKind.KEYWORD, "as"):
            alias = self.expect(TokenKind.IDENT).text
        return FromItem(collection=collection, alias=alias)

    def parse_expr(self) -> Node:
        return self.parse_or()

    def parse_or(self) -> Node:
        node = self.parse_and()
        while self.accept(TokenKind.KEYWORD, "or"):
            node = BinaryOp("or", node, self.parse_and())
        return node

    def parse_and(self) -> Node:
        node = self.parse_cmp()
        while self.accept(TokenKind.KEYWORD, "and"):
            node = BinaryOp("and", node, self.parse_cmp())
        return node

    def parse_cmp(self) -> Node:
        node = self.parse_add()
        token = self.current
        if token.kind is TokenKind.OP and token.text in _COMPARISONS:
            self.advance()
            node = BinaryOp(token.text, node, self.parse_add())
        return node

    def parse_add(self) -> Node:
        node = self.parse_mul()
        while True:
            token = self.current
            if token.kind is TokenKind.OP and token.text in ("+", "-"):
                self.advance()
                node = BinaryOp(token.text, node, self.parse_mul())
            else:
                return node

    def parse_mul(self) -> Node:
        node = self.parse_unary()
        while True:
            token = self.current
            if token.kind is TokenKind.STAR:
                self.advance()
                node = BinaryOp("*", node, self.parse_unary())
            elif token.kind is TokenKind.OP and token.text == "/":
                self.advance()
                node = BinaryOp("/", node, self.parse_unary())
            else:
                return node

    def parse_unary(self) -> Node:
        if self.accept(TokenKind.OP, "-"):
            return UnaryOp("-", self.parse_unary())
        if self.accept(TokenKind.KEYWORD, "not"):
            return UnaryOp("not", self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> Node:
        node = self.parse_primary()
        while True:
            if self.accept(TokenKind.LBRACKET):
                specs = [self.parse_dim()]
                while self.accept(TokenKind.COMMA):
                    specs.append(self.parse_dim())
                self.expect(TokenKind.RBRACKET)
                node = Subset(operand=node, specs=tuple(specs))
            elif self.accept(TokenKind.OP, "."):
                field = self.expect(TokenKind.IDENT).text
                node = FieldAccess(operand=node, field=field)
            else:
                return node

    def parse_dim(self) -> DimSpec:
        lo = self.parse_bound()
        if self.accept(TokenKind.COLON):
            hi = self.parse_bound()
            return DimSpec(lo=lo, hi=hi, is_section=False)
        if lo is None:
            # A bare '*' keeps the whole axis.
            return DimSpec(lo=None, hi=None, is_section=False)
        return DimSpec(lo=lo, hi=lo, is_section=True)

    def parse_bound(self) -> Optional[Node]:
        if self.accept(TokenKind.STAR):
            return None
        return self.parse_add()

    def parse_primary(self) -> Node:
        token = self.current
        if token.kind is TokenKind.NUMBER:
            self.advance()
            if "." in token.text:
                return NumberLit(float(token.text))
            return NumberLit(int(token.text))
        if token.kind is TokenKind.STRING:
            self.advance()
            return StringLit(token.text)
        if token.kind is TokenKind.LPAREN:
            self.advance()
            node = self.parse_expr()
            self.expect(TokenKind.RPAREN)
            return node
        if token.kind is TokenKind.IDENT:
            self.advance()
            if self.accept(TokenKind.LPAREN):
                args: List[Node] = []
                if self.current.kind is not TokenKind.RPAREN:
                    args.append(self.parse_expr())
                    while self.accept(TokenKind.COMMA):
                        args.append(self.parse_expr())
                self.expect(TokenKind.RPAREN)
                return FuncCall(name=token.text.lower(), args=tuple(args))
            return Var(name=token.text)
        raise QuerySyntaxError(
            f"unexpected token {token.text!r} at position {token.position}"
        )


def parse(text: str) -> Statement:
    """Parse a top-level statement (SELECT / CREATE / DROP / DELETE)."""
    return Parser(text).parse_statement()


def parse_expression(text: str) -> Node:
    """Parse a standalone expression (used by tests and the framing API)."""
    parser = Parser(text)
    node = parser.parse_expr()
    parser.expect(TokenKind.EOF)
    return node
