"""Tokenizer for the RasQL query subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional

from ...errors import QuerySyntaxError


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    COLON = ":"
    STAR = "*"
    EOF = "eof"


KEYWORDS = {
    "select",
    "from",
    "where",
    "as",
    "and",
    "or",
    "not",
    "create",
    "drop",
    "delete",
    "collection",
}

#: multi-char operators first so maximal munch works
OPERATORS = ["<=", ">=", "!=", "<", ">", "=", "+", "-", "/", "."]


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word


def tokenize(text: str) -> List[Token]:
    """Turn query text into tokens.

    Raises:
        QuerySyntaxError: on any character that fits no token class.
    """
    tokens: List[Token] = []
    position = 0
    length = len(text)
    while position < length:
        ch = text[position]
        if ch.isspace():
            position += 1
            continue
        if ch == "(":
            tokens.append(Token(TokenKind.LPAREN, ch, position))
            position += 1
            continue
        if ch == ")":
            tokens.append(Token(TokenKind.RPAREN, ch, position))
            position += 1
            continue
        if ch == "[":
            tokens.append(Token(TokenKind.LBRACKET, ch, position))
            position += 1
            continue
        if ch == "]":
            tokens.append(Token(TokenKind.RBRACKET, ch, position))
            position += 1
            continue
        if ch == ",":
            tokens.append(Token(TokenKind.COMMA, ch, position))
            position += 1
            continue
        if ch == ":":
            tokens.append(Token(TokenKind.COLON, ch, position))
            position += 1
            continue
        if ch == "*":
            tokens.append(Token(TokenKind.STAR, ch, position))
            position += 1
            continue
        if ch == '"' or ch == "'":
            end = text.find(ch, position + 1)
            if end < 0:
                raise QuerySyntaxError(f"unterminated string at {position}")
            tokens.append(Token(TokenKind.STRING, text[position + 1 : end], position))
            position = end + 1
            continue
        if ch.isdigit():
            end = position
            seen_dot = False
            while end < length and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    # Don't swallow a dot not followed by a digit (method syntax).
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            tokens.append(Token(TokenKind.NUMBER, text[position:end], position))
            position = end
            continue
        if ch.isalpha() or ch == "_":
            end = position
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[position:end]
            kind = TokenKind.KEYWORD if word.lower() in KEYWORDS else TokenKind.IDENT
            tokens.append(
                Token(kind, word.lower() if kind is TokenKind.KEYWORD else word, position)
            )
            position = end
            continue
        matched = False
        for operator in OPERATORS:
            if text.startswith(operator, position):
                tokens.append(Token(TokenKind.OP, operator, position))
                position += len(operator)
                matched = True
                break
        if matched:
            continue
        raise QuerySyntaxError(f"unexpected character {ch!r} at position {position}")
    tokens.append(Token(TokenKind.EOF, "", length))
    return tokens
