"""RasQL query subset: lexer, parser, AST and executor."""

from .ast import (
    BinaryOp,
    CreateCollection,
    DeleteFrom,
    DimSpec,
    DropCollection,
    FieldAccess,
    FromItem,
    FuncCall,
    Node,
    NumberLit,
    Query,
    StringLit,
    Subset,
    UnaryOp,
    Var,
)
from .executor import MDDRef, MutationHooks, QueryExecutor, QueryResult
from .lexer import Token, TokenKind, tokenize
from .parser import parse, parse_expression

__all__ = [
    "BinaryOp",
    "CreateCollection",
    "DeleteFrom",
    "DropCollection",
    "DimSpec",
    "FieldAccess",
    "FromItem",
    "FuncCall",
    "MDDRef",
    "MutationHooks",
    "Node",
    "NumberLit",
    "Query",
    "QueryExecutor",
    "QueryResult",
    "StringLit",
    "Subset",
    "Token",
    "TokenKind",
    "UnaryOp",
    "Var",
    "parse",
    "parse_expression",
    "tokenize",
]
