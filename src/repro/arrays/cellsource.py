"""Deterministic lazy cell generators.

An MDD in this reproduction may *declare* a domain far larger than RAM (the
paper's objects reach hundreds of GB).  Tiles only materialise their cells
when actually read, and they do so through a :class:`CellSource` — a pure
function of the requested region — so the same region always yields the same
bytes no matter when, or through which cache level, it is read.  That is the
property end-to-end fidelity tests rely on.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Callable, Optional, Sequence

import numpy as np

from .celltype import CellType
from .minterval import MInterval


class CellSource:
    """Produces the cell values of any sub-region of an object's domain."""

    def region(self, domain: MInterval, cell_type: CellType) -> np.ndarray:
        """Materialise the cells of *domain*; shape == domain.shape."""
        raise NotImplementedError


class ZeroSource(CellSource):
    """All cells zero — the cheapest possible source."""

    def region(self, domain: MInterval, cell_type: CellType) -> np.ndarray:
        return np.zeros(domain.shape, dtype=cell_type.dtype)


class ConstantSource(CellSource):
    """Every cell holds the same scalar value."""

    def __init__(self, value: float) -> None:
        self.value = value

    def region(self, domain: MInterval, cell_type: CellType) -> np.ndarray:
        return np.full(domain.shape, self.value, dtype=cell_type.dtype)


class HashedNoiseSource(CellSource):
    """Deterministic pseudo-random field, seeded per absolute coordinate block.

    Values depend only on (seed, region origin-aligned blocks), so any two
    reads of overlapping regions agree on the overlap.  Implemented by
    seeding numpy's Generator from a SHA-256 of (seed, block origin) for
    each aligned block of the requested region.
    """

    BLOCK = 64  # cells per axis per deterministic block

    def __init__(self, seed: int, low: float = 0.0, high: float = 1.0) -> None:
        self.seed = seed
        self.low = low
        self.high = high

    def region(self, domain: MInterval, cell_type: CellType) -> np.ndarray:
        out = np.empty(domain.shape, dtype=np.float64)
        block = self.BLOCK
        # Iterate absolute-coordinate-aligned blocks; always generate the
        # FULL block so the random layout is identical no matter which
        # sub-region of the block a read requests.
        block_ranges = [
            range(axis.lo // block, axis.hi // block + 1) for axis in domain.axes
        ]
        for block_coords in itertools.product(*block_ranges):
            origin = [c * block for c in block_coords]
            full = MInterval.of(*((o, o + block - 1) for o in origin))
            overlap = full.intersection(domain)
            if overlap is None:
                continue
            rng = np.random.default_rng(self._block_seed(tuple(origin)))
            cells = rng.uniform(self.low, self.high, size=full.shape)
            local = overlap.to_slices(full)
            target = overlap.to_slices(domain)
            out[target] = cells[local]
        if cell_type.dtype.fields is not None:
            struct = np.zeros(domain.shape, dtype=cell_type.dtype)
            for name in cell_type.dtype.names or ():
                struct[name] = out.astype(cell_type.dtype[name])
            return struct
        return out.astype(cell_type.dtype)

    def _block_seed(self, origin: Sequence[int]) -> int:
        digest = hashlib.sha256(
            (str(self.seed) + ":" + ",".join(map(str, origin))).encode()
        ).digest()
        return int.from_bytes(digest[:8], "little")


class QuantizedSource(CellSource):
    """Rounds another source's values to a fixed measurement precision.

    Real instruments deliver finite precision (a thermometer reads in
    steps of 0.25 K, a radiometer in digital counts); quantisation is also
    what makes archived scientific data compressible.  Values become
    ``round(x / step) * step``.
    """

    def __init__(self, inner: CellSource, step: float) -> None:
        if step <= 0:
            raise ValueError(f"quantisation step must be positive: {step}")
        self.inner = inner
        self.step = step

    def region(self, domain: MInterval, cell_type: CellType) -> np.ndarray:
        cells = self.inner.region(domain, cell_type)
        if cell_type.dtype.fields is not None or not np.issubdtype(
            cells.dtype, np.floating
        ):
            return cells  # integer/struct types are already quantised
        return (np.round(cells / self.step) * self.step).astype(cells.dtype)


class FunctionSource(CellSource):
    """Cells computed from absolute coordinates by a vectorised function.

    The callable receives one ``int64`` coordinate array per dimension
    (broadcast like ``numpy.meshgrid(indexing="ij")``) and returns the cell
    values.  Workload generators use this for physically plausible fields
    (temperature by latitude/height/season etc.).
    """

    def __init__(self, fn: Callable[..., np.ndarray]) -> None:
        self.fn = fn

    def region(self, domain: MInterval, cell_type: CellType) -> np.ndarray:
        coords = np.meshgrid(
            *(np.arange(a.lo, a.hi + 1, dtype=np.int64) for a in domain.axes),
            indexing="ij",
        )
        values = self.fn(*coords)
        return np.asarray(values).astype(cell_type.dtype, copy=False)
