"""Multidimensional tile indexes (Kapitel 2.5.4).

Two implementations behind one interface:

* :class:`GridIndex` — O(1) directory for regular tilings: tile ids are a
  pure function of grid coordinates (RasDaMan's *regular computed index*).
* :class:`RTreeIndex` — dynamic R-tree with quadratic split for arbitrary
  tile sets (RasDaMan's *RPT index* role), used by directional/aligned
  tilings where tile shapes vary.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import DomainError, TilingError
from .minterval import MInterval


class TileIndex:
    """Maps spatial regions to the tile ids intersecting them."""

    def insert(self, tile_id: int, domain: MInterval) -> None:
        raise NotImplementedError

    def intersecting(self, region: MInterval) -> List[int]:
        """Tile ids whose domains intersect *region*, ascending."""
        raise NotImplementedError

    def domain_of(self, tile_id: int) -> MInterval:
        raise NotImplementedError

    def all_ids(self) -> List[int]:
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self.all_ids())


class GridIndex(TileIndex):
    """Computed directory for a regular tiling of a known domain.

    Tile ids must have been assigned in row-major grid order (as
    :meth:`MInterval.grid` produces them); lookups then need no search at
    all — intersecting grid coordinates are computed arithmetically.
    """

    def __init__(self, domain: MInterval, tile_shape: Sequence[int]) -> None:
        if len(tile_shape) != domain.dimension:
            raise TilingError("tile shape dimensionality mismatch")
        self.domain = domain
        self.tile_shape = tuple(int(e) for e in tile_shape)
        self._counts = tuple(
            -(-axis.extent // extent)  # ceil division
            for axis, extent in zip(domain.axes, self.tile_shape)
        )
        self._tiles: Dict[int, MInterval] = {}

    @property
    def grid_counts(self) -> Tuple[int, ...]:
        """Number of tiles along each axis."""
        return self._counts

    def insert(self, tile_id: int, domain: MInterval) -> None:
        expected = self._domain_for(tile_id)
        if expected != domain:
            raise TilingError(
                f"tile {tile_id} domain {domain} does not match grid slot {expected}"
            )
        self._tiles[tile_id] = domain

    def _domain_for(self, tile_id: int) -> MInterval:
        coords = []
        remaining = tile_id
        for count in reversed(self._counts):
            coords.append(remaining % count)
            remaining //= count
        if remaining:
            raise DomainError(f"tile id {tile_id} outside grid {self._counts}")
        coords.reverse()
        axes = []
        for coordinate, extent, axis in zip(coords, self.tile_shape, self.domain.axes):
            lo = axis.lo + coordinate * extent
            hi = min(lo + extent - 1, axis.hi)
            axes.append((lo, hi))
        return MInterval.of(*axes)

    def tile_id_at(self, grid_coords: Sequence[int]) -> int:
        """Tile id of the grid cell at *grid_coords* (row-major)."""
        tile_id = 0
        for coordinate, count in zip(grid_coords, self._counts):
            if not 0 <= coordinate < count:
                raise DomainError(f"grid coordinate {grid_coords} outside {self._counts}")
            tile_id = tile_id * count + coordinate
        return tile_id

    def intersecting(self, region: MInterval) -> List[int]:
        clipped = self.domain.intersection(region)
        if clipped is None:
            return []
        ranges = []
        for axis, extent, clip in zip(self.domain.axes, self.tile_shape, clipped.axes):
            first = (clip.lo - axis.lo) // extent
            last = (clip.hi - axis.lo) // extent
            ranges.append(range(first, last + 1))
        ids = [self.tile_id_at(coords) for coords in itertools.product(*ranges)]
        return sorted(ids)

    def domain_of(self, tile_id: int) -> MInterval:
        try:
            return self._tiles[tile_id]
        except KeyError:
            raise DomainError(f"tile {tile_id} not in index") from None

    def all_ids(self) -> List[int]:
        return sorted(self._tiles)


@dataclass
class _Node:
    """R-tree node; leaves hold (tile_id, box) entries."""

    leaf: bool
    boxes: List[MInterval] = field(default_factory=list)
    children: List["_Node"] = field(default_factory=list)  # internal nodes
    tile_ids: List[int] = field(default_factory=list)  # leaves

    def mbr(self) -> Optional[MInterval]:
        if not self.boxes:
            return None
        box = self.boxes[0]
        for other in self.boxes[1:]:
            box = box.hull(other)
        return box


class RTreeIndex(TileIndex):
    """Dynamic R-tree (quadratic split) over arbitrary tile rectangles."""

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 4:
            raise ValueError("max_entries must be >= 4")
        self.max_entries = max_entries
        self.min_entries = max_entries // 2
        self._root = _Node(leaf=True)
        self._domains: Dict[int, MInterval] = {}

    # -- public API -----------------------------------------------------------

    def insert(self, tile_id: int, domain: MInterval) -> None:
        if tile_id in self._domains:
            raise TilingError(f"tile {tile_id} already indexed")
        self._domains[tile_id] = domain
        split = self._insert(self._root, tile_id, domain)
        if split is not None:
            old_root = self._root
            self._root = _Node(leaf=False)
            for node in (old_root, split):
                box = node.mbr()
                assert box is not None
                self._root.children.append(node)
                self._root.boxes.append(box)

    def intersecting(self, region: MInterval) -> List[int]:
        found: List[int] = []
        self._search(self._root, region, found)
        return sorted(found)

    def domain_of(self, tile_id: int) -> MInterval:
        try:
            return self._domains[tile_id]
        except KeyError:
            raise DomainError(f"tile {tile_id} not in index") from None

    def all_ids(self) -> List[int]:
        return sorted(self._domains)

    @property
    def height(self) -> int:
        """Tree height (leaf = 1), for structural tests."""
        height = 1
        node = self._root
        while not node.leaf:
            node = node.children[0]
            height += 1
        return height

    # -- internals ----------------------------------------------------------------

    def _search(self, node: _Node, region: MInterval, found: List[int]) -> None:
        for position, box in enumerate(node.boxes):
            if not box.intersects(region):
                continue
            if node.leaf:
                found.append(node.tile_ids[position])
            else:
                self._search(node.children[position], region, found)

    def _insert(self, node: _Node, tile_id: int, box: MInterval) -> Optional[_Node]:
        """Insert into subtree; returns a split-off sibling when overflowing."""
        if node.leaf:
            node.boxes.append(box)
            node.tile_ids.append(tile_id)
            if len(node.boxes) > self.max_entries:
                return self._split(node)
            return None
        best = self._choose_child(node, box)
        split = self._insert(node.children[best], tile_id, box)
        refreshed = node.children[best].mbr()
        assert refreshed is not None
        node.boxes[best] = refreshed
        if split is not None:
            split_box = split.mbr()
            assert split_box is not None
            node.children.append(split)
            node.boxes.append(split_box)
            if len(node.children) > self.max_entries:
                return self._split(node)
        return None

    def _choose_child(self, node: _Node, box: MInterval) -> int:
        """Child whose MBR grows least (ties: smaller area)."""
        best_index = 0
        best_growth = None
        best_area = None
        for position, child_box in enumerate(node.boxes):
            area = child_box.cell_count
            grown = child_box.hull(box).cell_count
            growth = grown - area
            if (
                best_growth is None
                or growth < best_growth
                or (growth == best_growth and area < (best_area or 0))
            ):
                best_index = position
                best_growth = growth
                best_area = area
        return best_index

    def _split(self, node: _Node) -> _Node:
        """Quadratic split; *node* keeps one group, the returned node the other."""
        entries = list(range(len(node.boxes)))
        seed_a, seed_b = self._pick_seeds(node.boxes)
        group_a = [seed_a]
        group_b = [seed_b]
        remaining = [i for i in entries if i not in (seed_a, seed_b)]
        while remaining:
            # Force assignment when one group must take everything left.
            if len(group_a) + len(remaining) <= self.min_entries:
                group_a.extend(remaining)
                break
            if len(group_b) + len(remaining) <= self.min_entries:
                group_b.extend(remaining)
                break
            index = remaining.pop(0)
            mbr_a = self._group_mbr(node.boxes, group_a)
            mbr_b = self._group_mbr(node.boxes, group_b)
            grow_a = mbr_a.hull(node.boxes[index]).cell_count - mbr_a.cell_count
            grow_b = mbr_b.hull(node.boxes[index]).cell_count - mbr_b.cell_count
            (group_a if grow_a <= grow_b else group_b).append(index)
        sibling = _Node(leaf=node.leaf)
        keep_boxes = [node.boxes[i] for i in group_a]
        move_boxes = [node.boxes[i] for i in group_b]
        if node.leaf:
            keep_ids = [node.tile_ids[i] for i in group_a]
            move_ids = [node.tile_ids[i] for i in group_b]
            node.boxes, node.tile_ids = keep_boxes, keep_ids
            sibling.boxes, sibling.tile_ids = move_boxes, move_ids
        else:
            keep_children = [node.children[i] for i in group_a]
            move_children = [node.children[i] for i in group_b]
            node.boxes, node.children = keep_boxes, keep_children
            sibling.boxes, sibling.children = move_boxes, move_children
        return sibling

    @staticmethod
    def _pick_seeds(boxes: List[MInterval]) -> Tuple[int, int]:
        """Pair wasting the most area when joined (quadratic seed pick)."""
        worst = (0, 1)
        worst_waste = -1
        for a in range(len(boxes)):
            for b in range(a + 1, len(boxes)):
                waste = (
                    boxes[a].hull(boxes[b]).cell_count
                    - boxes[a].cell_count
                    - boxes[b].cell_count
                )
                if waste > worst_waste:
                    worst_waste = waste
                    worst = (a, b)
        return worst

    @staticmethod
    def _group_mbr(boxes: List[MInterval], group: List[int]) -> MInterval:
        box = boxes[group[0]]
        for index in group[1:]:
            box = box.hull(boxes[index])
        return box


def build_index(
    domain: MInterval,
    tile_domains: List[MInterval],
    tile_shape: Optional[Sequence[int]] = None,
) -> TileIndex:
    """Choose and populate the right index for a tile set.

    A :class:`GridIndex` when *tile_shape* describes a regular grid (fast
    path), otherwise an :class:`RTreeIndex`.
    """
    index: TileIndex
    if tile_shape is not None:
        index = GridIndex(domain, tile_shape)
    else:
        index = RTreeIndex()
    for tile_id, tile_domain in enumerate(tile_domains):
        index.insert(tile_id, tile_domain)
    return index
