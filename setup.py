"""Setup shim for legacy editable installs in offline environments."""
from setuptools import setup

setup()
