"""E7 — Super-tile size sweep (Kapitel 3.2.3/3.2.5).

Mean retrieval time of a fixed query mix as a function of super-tile size.
Expected shape: a U-curve — small super-tiles pay one tape positioning per
piece, huge super-tiles drag useless bytes — with eSTAR's computed optimum
S* landing near the measured minimum.
"""

import numpy as np
import pytest

from repro.bench import ResultTable, sparkline
from repro.core import optimal_super_tile_bytes
from repro.tertiary import GB, MB
from repro.workloads import subcube

from _rigs import BENCH_PROFILE, heaven_rig

OBJECT_MB = 256
SELECTIVITY = 0.03
SIZES_MB = [1, 4, 16, 64, 256]
QUERIES = 6


def run_sweep():
    rng_regions = [
        subcube(
            heaven_rig(object_mb=OBJECT_MB, tile_kb=512, dims=3)[1].domain,
            SELECTIVITY,
            np.random.default_rng(100 + i),
        )
        for i in range(QUERIES)
    ]
    rows = []
    for size_mb in SIZES_MB:
        heaven, mdd = heaven_rig(
            object_mb=OBJECT_MB,
            tile_kb=512,
            dims=3,
            super_tile_bytes=size_mb * MB,
            disk_cache_bytes=2 * GB,
            # Whole super-tiles are the unit of tape access here: the sweep
            # isolates the classic seek-amortisation vs useless-bytes
            # tradeoff that sets the super-tile size (Kapitel 3.2.5).
            partial_super_tile_reads=False,
        )
        heaven.archive("bench", "obj")
        heaven.library.unmount_all()  # cold drive per query mix
        total_time = 0.0
        total_tape = 0
        for region in rng_regions:
            heaven.disk_cache = _fresh_cache(heaven)  # cold cache per query
            heaven.memory_cache.invalidate_object("obj")
            for entry in heaven._archived.values():
                entry.staged_runs.clear()
            _cells, report = heaven.read_with_report("bench", "obj", region)
            total_time += report.virtual_seconds
            total_tape += report.bytes_from_tape
        rows.append((size_mb, total_time / QUERIES, total_tape / QUERIES))
    expected_request = SELECTIVITY * OBJECT_MB * MB
    s_star = optimal_super_tile_bytes(BENCH_PROFILE, expected_request, 1 * MB, 1 * GB)
    return rows, s_star


def _fresh_cache(heaven):
    from repro.core.cache import DiskCache, make_policy

    return DiskCache(
        heaven.config.disk_cache_bytes,
        make_policy(heaven.config.disk_cache_policy),
        heaven.config.disk_profile,
        heaven.clock,
        on_evict=heaven._on_cache_evict,
    )


def build_table(rows, s_star) -> ResultTable:
    table = ResultTable(
        f"E7  Super-tile size sweep ({OBJECT_MB} MB object, "
        f"{100 * SELECTIVITY:.0f} % subcube queries)",
        ["super-tile [MB]", "mean query [s]", "mean tape bytes [MB]"],
    )
    for size_mb, mean_time, mean_tape in rows:
        table.add(size_mb, mean_time, mean_tape / MB)
    table.note(f"eSTAR automatic size S* = {s_star / MB:.0f} MB")
    table.note(f"U-curve (query time over size): [{sparkline([t for _s, t, _b in rows])}]")
    return table


def test_e7_supertile_size(benchmark, report_table):
    rows, s_star = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = build_table(rows, s_star)
    report_table("e7_supertile_size", table)

    times = [t for _s, t, _b in rows]
    best_index = times.index(min(times))
    # Shape: U-curve — the extremes are worse than the interior minimum.
    assert best_index not in (0,)
    assert times[0] > times[best_index]
    assert times[-1] > times[best_index]
    # eSTAR's automatic size lands within one sweep step of the optimum.
    best_size = rows[best_index][0] * MB
    assert best_size / 4 <= s_star <= best_size * 4
