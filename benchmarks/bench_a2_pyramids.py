"""A2 (ablation) — scaling pyramids (Kapitel 3.8, materialised scale ops).

Zoom queries (``scale(c, f, f)``) over an archived mosaic with and without
materialised pyramid levels.  Series per factor: query time, tape bytes,
plus the storage overhead of the pyramid.
"""

import pytest

from repro.bench import ResultTable, speedup
from repro.tertiary import GB, MB

from _rigs import heaven_rig

OBJECT_MB = 64  # pyramids are materialised: keep the base object real-RAM sized
FACTORS = [2, 4, 8]


def run_variant(with_pyramids: bool):
    heaven, mdd = heaven_rig(
        object_mb=OBJECT_MB,
        tile_kb=512,
        dims=2,
        super_tile_bytes=8 * MB,
        disk_cache_bytes=2 * GB,
        pyramid_factors=tuple(FACTORS) if with_pyramids else None,
    )
    heaven.archive("bench", "obj")
    heaven.library.unmount_all()
    results = {}
    for factor in FACTORS:
        # Fresh caches per factor: drop staged runs so every query is cold.
        heaven.memory_cache.invalidate_object("obj")
        for key in list(heaven.disk_cache.keys()):
            heaven.disk_cache.invalidate(key)
        for entry in heaven._archived.values():
            entry.staged_runs.clear()
        start = heaven.clock.now
        tape0 = heaven.library.stats().bytes_read
        heaven.query(f"select scale(c, {factor}, {factor}) from bench as c")
        results[factor] = (
            heaven.clock.now - start,
            heaven.library.stats().bytes_read - tape0,
        )
    overhead = heaven.pyramids.total_bytes("obj") if with_pyramids else 0
    return results, overhead


def run_all():
    return run_variant(False), run_variant(True)


def build_table(plain, pyramid) -> ResultTable:
    plain_results, _ = plain
    pyramid_results, overhead = pyramid
    table = ResultTable(
        f"A2  Scaling pyramids on a {OBJECT_MB} MB archived mosaic",
        ["zoom factor", "plain [s]", "pyramid [s]", "plain tape [MB]",
         "pyramid tape [MB]", "speedup"],
    )
    for factor in FACTORS:
        plain_time, plain_bytes = plain_results[factor]
        pyr_time, pyr_bytes = pyramid_results[factor]
        table.add(
            factor,
            plain_time,
            pyr_time,
            plain_bytes / MB,
            pyr_bytes / MB,
            speedup(plain_time, pyr_time),
        )
    table.note(
        f"pyramid storage overhead: {overhead / MB:.1f} MB "
        f"({100 * overhead / (OBJECT_MB * MB):.1f} % of the object)"
    )
    return table


def test_a2_pyramids(benchmark, report_table):
    plain, pyramid = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = build_table(plain, pyramid)
    report_table("a2_pyramids", table)

    plain_results, _ = plain
    pyramid_results, overhead = pyramid
    for factor in FACTORS:
        # Shape: pyramid answers use zero tape bytes and are far faster.
        assert pyramid_results[factor][1] == 0
        assert pyramid_results[factor][0] < plain_results[factor][0] / 20
    # 2-D pyramid at 2/4/8 costs about 1/4 + 1/16 + 1/64 ≈ 33 % extra.
    assert overhead < 0.40 * OBJECT_MB * MB
