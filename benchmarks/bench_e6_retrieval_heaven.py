"""E6 — Datenretrieval durch RasDaMan/HEAVEN (Kapitel 4.4.2).

Super-tile-granular retrieval over the same selectivity sweep as E5.
Expected shape: bytes moved scale with the request (plus super-tile
rounding), giving order-of-magnitude time wins at the paper's canonical
1-10 % selectivities; towards 100 % both systems converge on streaming
the whole object and the advantage disappears.
"""

import numpy as np
import pytest

from repro.bench import ResultTable, speedup
from repro.tertiary import GB, HSMSystem, MB, TapeLibrary
from repro.workloads import subcube

from _rigs import BENCH_PROFILE, heaven_rig

OBJECT_MB = 512
SELECTIVITIES = [0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 1.00]


def hsm_time(selectivity: float) -> float:
    hsm = HSMSystem(TapeLibrary(BENCH_PROFILE, retain_payload=False))
    hsm.archive_file("obj", OBJECT_MB * MB)
    start = hsm.clock.now
    hsm.read_file("obj", 0, int(OBJECT_MB * MB * selectivity))
    return hsm.clock.now - start


def run_sweep():
    rows = []
    rng = np.random.default_rng(7)
    for selectivity in SELECTIVITIES:
        heaven, mdd = heaven_rig(
            object_mb=OBJECT_MB,
            tile_kb=512,
            dims=3,
            super_tile_bytes=16 * MB,
            # The staging area must hold the working set, as the HSM's does;
            # cache-pressure effects are E10's subject, not this sweep's.
            disk_cache_bytes=2 * GB,
        )
        heaven.archive("bench", "obj")
        region = subcube(mdd.domain, selectivity, rng)
        _cells, report = heaven.read_with_report("bench", "obj", region)
        rows.append((selectivity, report, hsm_time(selectivity)))
    return rows


def build_table(rows) -> ResultTable:
    table = ResultTable(
        f"E6  HEAVEN (super-tile-granular) retrieval of a {OBJECT_MB} MB object",
        ["selectivity [%]", "useful [MB]", "from tape [MB]", "useless [%]",
         "HEAVEN [s]", "HSM [s]", "speedup vs HSM"],
    )
    for selectivity, report, hsm_seconds in rows:
        table.add(
            100 * selectivity,
            report.bytes_useful / MB,
            report.bytes_from_tape / MB,
            100 * report.useless_ratio,
            report.virtual_seconds,
            hsm_seconds,
            speedup(hsm_seconds, report.virtual_seconds),
        )
    table.note("cold caches per point; clustered placement; elevator scheduling")
    return table


def test_e6_retrieval_heaven(benchmark, report_table):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = build_table(rows)
    report_table("e6_retrieval_heaven", table)

    # Shape: at 1-10 % selectivity HEAVEN moves a small fraction of the
    # object and wins clearly; at 100 % the two systems converge.
    for selectivity, report, hsm_seconds in rows:
        if selectivity <= 0.10:
            assert report.bytes_from_tape <= 0.5 * OBJECT_MB * MB
            assert report.virtual_seconds < hsm_seconds
    last = rows[-1]
    assert 0.4 < last[1].virtual_seconds / last[2] < 2.5  # converged
    # Monotone: more selectivity, more bytes from tape.
    tape_bytes = [r[1].bytes_from_tape for r in rows]
    assert tape_bytes == sorted(tape_bytes)
