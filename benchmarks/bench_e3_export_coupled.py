"""E3 — RasDaMan Exportvorgang (Kapitel 4.3.1).

The coupled export baseline: each tile is fetched from the base RDBMS and
committed to tape as its own segment.  Export time is dominated by the
per-tile stop/start penalty and never approaches the drive's streaming
rate — the figure's series is export time (and achieved throughput) over
object size.
"""

import pytest

from repro.bench import ResultTable
from repro.core import CoupledExporter
from repro.tertiary import MB

from _rigs import BENCH_PROFILE, export_rig

OBJECT_SIZES_MB = [64, 128, 256, 512]


def run_sweep():
    rows = []
    for size_mb in OBJECT_SIZES_MB:
        storage, library, mdd = export_rig(size_mb, tile_kb=512)
        report = CoupledExporter(storage, library).export(mdd)
        rows.append((size_mb, report))
    return rows


def build_table(rows) -> ResultTable:
    table = ResultTable(
        "E3  Coupled (RasDaMan) export: tile-by-tile to tape",
        ["object [MB]", "tiles", "segments", "export [s]", "throughput [MB/s]",
         "settle share [%]"],
    )
    for size_mb, report in rows:
        settle = report.breakdown.get("settle", 0.0)
        table.add(
            size_mb,
            report.tiles_exported,
            report.segments_written,
            report.virtual_seconds,
            report.throughput_mb_s,
            100.0 * settle / report.virtual_seconds,
        )
    table.note(
        f"drive streams at {BENCH_PROFILE.transfer_rate_bps / MB:.0f} MB/s; "
        "per-tile commits keep it far below that"
    )
    return table


def test_e3_export_coupled(benchmark, report_table):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = build_table(rows)
    report_table("e3_export_coupled", table)

    # Shape: throughput is a small fraction of the streaming rate and the
    # settle penalty dominates as objects (tile counts) grow.
    stream_rate = BENCH_PROFILE.transfer_rate_bps / MB
    for _size, report in rows:
        assert report.throughput_mb_s < stream_rate / 3
    largest = rows[-1][1]
    assert largest.breakdown.get("settle", 0) / largest.virtual_seconds > 0.5
