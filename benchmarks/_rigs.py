"""Shared experiment rigs for the benchmark suite.

Benchmarks run payload-free (``retain_payload=False``): the simulator
tracks byte counts and charges device time without holding real buffers,
so multi-GB virtual objects are cheap on the host.  Correctness of the
payload path is covered by the test suite.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.arrays import ArrayStorage, DOUBLE, MDD, MInterval, RegularTiling, ZeroSource
from repro.core import Heaven, HeavenConfig
from repro.dbms import Database
from repro.tertiary import DLT_7000, GB, MB, SimClock, TapeLibrary, scaled_profile

#: Laptop-scale medium: mechanics of a DLT-7000, 2 GB capacity.
BENCH_PROFILE = scaled_profile(DLT_7000, 2 * GB)


def export_rig(
    object_mb: int,
    tile_kb: int = 256,
    profile=BENCH_PROFILE,
) -> Tuple[ArrayStorage, TapeLibrary, MDD]:
    """A persisted 2-D object of *object_mb* MB with square tiles."""
    clock = SimClock()
    storage = ArrayStorage(Database(clock, retain_payload=False))
    library = TapeLibrary(profile, clock=clock, retain_payload=False)
    storage.create_collection("bench")
    cells = object_mb * MB // DOUBLE.size_bytes
    side = int(cells**0.5)
    tile_side = max(1, int((tile_kb * 1024 // DOUBLE.size_bytes) ** 0.5))
    mdd = MDD(
        "obj",
        MInterval.from_shape((side, side)),
        DOUBLE,
        tiling=RegularTiling((tile_side, tile_side)),
        source=ZeroSource(),
    )
    storage.insert_object("bench", mdd)
    return storage, library, mdd


def heaven_rig(
    object_mb: int = 64,
    tile_kb: int = 256,
    dims: int = 3,
    name: str = "obj",
    **config_overrides,
) -> Tuple[Heaven, MDD]:
    """A HEAVEN instance with one inserted (not yet archived) object."""
    defaults = dict(
        tape_profile=BENCH_PROFILE,
        super_tile_bytes=8 * MB,
        disk_cache_bytes=256 * MB,
        memory_cache_bytes=64 * MB,
        retain_payload=False,
    )
    defaults.update(config_overrides)
    heaven = Heaven(HeavenConfig(**defaults))
    heaven.create_collection("bench")
    mdd = make_object(object_mb, tile_kb, dims, name=name)
    heaven.insert("bench", mdd)
    return heaven, mdd


def make_object(object_mb: int, tile_kb: int = 256, dims: int = 3, name: str = "obj") -> MDD:
    """A *dims*-dimensional cube of about *object_mb* MB, square-ish tiles."""
    cells = object_mb * MB // DOUBLE.size_bytes
    side = max(1, int(round(cells ** (1.0 / dims))))
    tile_cells = tile_kb * 1024 // DOUBLE.size_bytes
    tile_side = max(1, int(round(tile_cells ** (1.0 / dims))))
    tile_side = min(tile_side, side)
    return MDD(
        name,
        MInterval.from_shape((side,) * dims),
        DOUBLE,
        tiling=RegularTiling((tile_side,) * dims),
        source=ZeroSource(),
    )
