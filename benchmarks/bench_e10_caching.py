"""E10 — Caching von Array-Daten (Kapitel 3.6.3 Verdrängungsstrategien).

Replays the same popularity-skewed (Zipf + locality) query stream against
the HEAVEN disk cache under every eviction policy.  Series: hit ratio,
bytes staged from tape and mean query time per policy — LRU-family
policies should clearly beat FIFO/SIZE on a skewed stream, with the
tape-cost-aware GDS competitive with LRU.
"""

import numpy as np
import pytest

from repro.bench import ResultTable
from repro.core import policy_names
from repro.tertiary import MB
from repro.workloads import ZipfQueryStream

from _rigs import heaven_rig

OBJECT_MB = 192
CACHE_MB = 24
QUERIES = 60
SELECTIVITY = 0.015


def run_policy(policy: str):
    heaven, mdd = heaven_rig(
        object_mb=OBJECT_MB,
        tile_kb=512,
        dims=3,
        super_tile_bytes=8 * MB,
        disk_cache_bytes=CACHE_MB * MB,
        memory_cache_bytes=1,  # effectively disabled: isolate the disk cache
        disk_cache_policy=policy,
    )
    heaven.archive("bench", "obj")
    heaven.library.unmount_all()
    stream = ZipfQueryStream(
        [mdd.domain], selectivity=SELECTIVITY, locality=0.75, seed=17
    )
    start = heaven.clock.now
    tape_before = heaven.library.stats().bytes_read
    for event in stream.take(QUERIES):
        heaven.read("bench", "obj", event.region)
    elapsed = heaven.clock.now - start
    staged = heaven.library.stats().bytes_read - tape_before
    stats = heaven.disk_cache.stats
    return stats.hit_ratio, staged, elapsed / QUERIES


def run_all():
    return {policy: run_policy(policy) for policy in policy_names()}


def build_table(results) -> ResultTable:
    table = ResultTable(
        f"E10  Eviction strategies ({CACHE_MB} MB cache, {OBJECT_MB} MB object, "
        f"{QUERIES} Zipf queries)",
        ["policy", "hit ratio", "bytes from tape [MB]", "mean query [s]"],
    )
    ordered = sorted(results.items(), key=lambda kv: kv[1][2])
    for policy, (hit_ratio, staged, mean_time) in ordered:
        table.add(policy, hit_ratio, staged / MB, mean_time)
    table.note("memory tile cache disabled; every hit/miss is the disk cache's")
    return table


def test_e10_caching(benchmark, report_table):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = build_table(results)
    report_table("e10_caching", table)

    # Shape: recency-aware policies beat FIFO/LFU on a locality-heavy
    # stream where the cost that matters is bytes re-staged from tape.
    assert results["lru"][0] > results["fifo"][0]
    assert results["lru"][1] < results["fifo"][1]
    assert results["lru"][2] < results["fifo"][2]
    # The tape-cost-aware GDS policy is competitive with LRU ...
    assert results["gds"][2] < results["fifo"][2] * 1.05
    # ... and frequency-only LFU ages badly (stuck entries force restages).
    assert results["lfu"][1] > results["lru"][1]
