"""E8 — Intra-/Inter-Super-Tile-Clustering (Kapitel 3.3.2).

Compares archive layouts on the same query mix:

* **scattered** — super-tiles round-robined over several media
  (generation-order archive baseline): many exchanges per query;
* **clustered** — HEAVEN's contiguous placement: at most one exchange;
* **clustered + intra** — additionally orders tiles inside each super-tile
  by the access profile, shrinking the byte runs partial reads stream.

Expected shape: clustering removes nearly all media exchanges; intra
clustering cuts bytes moved again on thin-slice queries.
"""

import numpy as np
import pytest

from repro.bench import ResultTable, speedup
from repro.core import AccessStatistics, ScatterPlacement
from repro.tertiary import GB, MB
from repro.workloads import slice_region

from _rigs import heaven_rig

OBJECT_MB = 256
SUPER_TILE_MB = 16
QUERIES = 4


def run_variant(intra: bool, scatter: bool, stats_seed: bool):
    heaven, mdd = heaven_rig(
        object_mb=OBJECT_MB,
        tile_kb=512,
        dims=3,
        super_tile_bytes=SUPER_TILE_MB * MB,
        disk_cache_bytes=2 * GB,
        intra_clustering=intra,
        inter_clustering=not scatter,
        num_drives=1,
    )
    if stats_seed:
        # Seed the access statistics eSTAR and intra clustering consume:
        # queries span axes 0/1 fully and slice axis 2 thinly.
        stats = AccessStatistics(dimension=3)
        for _ in range(4):
            stats.record(
                slice_region(mdd.domain, axis=2, position=10, thickness=8),
                mdd.domain,
                mdd.cell_type.size_bytes,
            )
        heaven.access_stats["obj"] = stats
    placement = ScatterPlacement(spread=6) if scatter else None
    heaven.archive("bench", "obj", placement=placement)
    heaven.library.unmount_all()

    total_time = 0.0
    total_tape = 0
    exchanges_before = heaven.library.stats().exchanges
    extent = mdd.domain[2].extent
    for i in range(QUERIES):
        position = (i * extent) // (QUERIES + 1)
        region = slice_region(mdd.domain, axis=2, position=position, thickness=4)
        _cells, report = heaven.read_with_report("bench", "obj", region)
        total_time += report.virtual_seconds
        total_tape += report.bytes_from_tape
    exchanges = heaven.library.stats().exchanges - exchanges_before
    return total_time / QUERIES, total_tape / QUERIES, exchanges


def run_all():
    return {
        "scattered": run_variant(intra=False, scatter=True, stats_seed=False),
        "clustered": run_variant(intra=False, scatter=False, stats_seed=False),
        "clustered+intra": run_variant(intra=True, scatter=False, stats_seed=True),
    }


def build_table(results) -> ResultTable:
    table = ResultTable(
        f"E8  Placement/clustering comparison ({OBJECT_MB} MB object, "
        "thin z-slice queries)",
        ["layout", "mean query [s]", "mean tape bytes [MB]", "media exchanges"],
    )
    for label, (mean_time, mean_tape, exchanges) in results.items():
        table.add(label, mean_time, mean_tape / MB, exchanges)
    table.note("scattered = round-robin over 6 media (generation-order archive)")
    return table


def test_e8_clustering(benchmark, report_table):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = build_table(results)
    report_table("e8_clustering", table)

    scattered = results["scattered"]
    clustered = results["clustered"]
    intra = results["clustered+intra"]
    # Shape: clustering eliminates most exchanges and wins on time.
    assert clustered[2] <= scattered[2] / 3
    assert clustered[0] < scattered[0]
    # Intra clustering cuts the bytes streamed for thin slices further.
    assert intra[1] < clustered[1]
    assert intra[0] <= clustered[0] * 1.05
