"""E9 — Query-Scheduling (Kapitel 3.4.3).

Multi-query batches whose super-tile requests interleave several media.
FIFO execution exchanges media on almost every request; HEAVEN's scheduler
groups requests per medium and sweeps forward.  Series over batch size:
media exchanges and total time for both schedulers.
"""

import numpy as np
import pytest

from repro.bench import ResultTable, speedup
from repro.core import ElevatorScheduler, FIFOScheduler, TapeRequest, execute_batch
from repro.tertiary import GB, MB, TapeLibrary

from _rigs import BENCH_PROFILE

MEDIA = 6
SEGMENTS_PER_MEDIUM = 24
SEGMENT_MB = 8
BATCH_SIZES = [8, 16, 32, 64]


def build_library():
    library = TapeLibrary(BENCH_PROFILE, num_drives=1, retain_payload=False)
    requests = []
    for m in range(MEDIA):
        library.new_medium(f"m{m}")
        for s in range(SEGMENTS_PER_MEDIUM):
            name = f"m{m}/s{s}"
            library.write_segment(name, SEGMENT_MB * MB, medium_id=f"m{m}")
            _mid, segment = library.segment(name)
            requests.append(
                TapeRequest(name, f"m{m}", segment.offset, segment.length, query_id=s)
            )
    library.unmount_all()
    library.clock.reset()
    return library, requests


def run_sweep():
    rows = []
    rng = np.random.default_rng(5)
    for batch_size in BATCH_SIZES:
        library, requests = build_library()
        batch = list(rng.choice(len(requests), size=batch_size, replace=False))
        batch = [requests[i] for i in batch]

        fifo = execute_batch(batch, library, FIFOScheduler())
        library.unmount_all()
        library.clock.reset()
        elevator = execute_batch(batch, library, ElevatorScheduler())
        rows.append((batch_size, fifo, elevator))
    return rows


def build_table(rows) -> ResultTable:
    table = ResultTable(
        f"E9  Query scheduling: FIFO vs elevator ({MEDIA} media, "
        f"{SEGMENT_MB} MB segments)",
        ["batch", "FIFO exch.", "sched exch.", "FIFO [s]", "sched [s]",
         "sched work [s]", "speedup"],
    )
    for batch_size, fifo, elevator in rows:
        table.add(
            batch_size,
            fifo.exchanges,
            elevator.exchanges,
            fifo.virtual_seconds,
            elevator.virtual_seconds,
            elevator.serial_device_seconds,
            speedup(fifo.virtual_seconds, elevator.virtual_seconds),
        )
    table.note("requests drawn uniformly over media; single drive — "
               "device work equals elapsed time (nothing overlaps)")
    return table


def test_e9_scheduling(benchmark, report_table):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = build_table(rows)
    report_table("e9_scheduling", table)

    for batch_size, fifo, elevator in rows:
        # Shape: the scheduler needs at most one exchange per medium.
        assert elevator.exchanges <= MEDIA
        assert fifo.exchanges > elevator.exchanges
        assert elevator.virtual_seconds < fifo.virtual_seconds
        # Elevator also winds less within media.
        assert elevator.seek_distance_bytes <= fifo.seek_distance_bytes
        # Single drive, no overlap: elapsed time is pure device work.
        assert fifo.serial_device_seconds == pytest.approx(fifo.virtual_seconds)
        assert elevator.serial_device_seconds == pytest.approx(
            elevator.virtual_seconds
        )
    # The win grows with batch size (FIFO exchange count scales with batch).
    factors = [f.virtual_seconds / e.virtual_seconds for _b, f, e in rows]
    assert factors[-1] > factors[0]
    assert factors[-1] >= 3
