"""E4 — Entkoppelter TCT Exportvorgang (Kapitel 4.3.2).

The decoupled TCT export streams whole super-tiles while the next one is
assembled in parallel.  The figure's series: export time of both paths over
object size, and the speedup factor — expected to be large (>=5x) and to
grow with object size, with TCT throughput approaching the drive's
streaming rate.
"""

import pytest

from repro.bench import ResultTable, speedup
from repro.core import ClusteredPlacement, CoupledExporter, TCTExporter, star_partition
from repro.tertiary import MB

from _rigs import BENCH_PROFILE, export_rig

OBJECT_SIZES_MB = [64, 128, 256, 512]
SUPER_TILE_MB = 32


def run_sweep():
    rows = []
    for size_mb in OBJECT_SIZES_MB:
        storage, library, mdd = export_rig(size_mb, tile_kb=512)
        coupled = CoupledExporter(storage, library).export(mdd)

        storage2, library2, mdd2 = export_rig(size_mb, tile_kb=512)
        super_tiles = star_partition(mdd2, SUPER_TILE_MB * MB)
        plan = ClusteredPlacement().plan(super_tiles, library2)
        tct = TCTExporter(storage2, library2).export(mdd2, plan)
        rows.append((size_mb, coupled, tct))
    return rows


def build_table(rows) -> ResultTable:
    table = ResultTable(
        "E4  Decoupled TCT export vs coupled export",
        ["object [MB]", "coupled [s]", "TCT [s]", "speedup",
         "TCT throughput [MB/s]", "TCT stalls [s]"],
    )
    for size_mb, coupled, tct in rows:
        table.add(
            size_mb,
            coupled.virtual_seconds,
            tct.virtual_seconds,
            speedup(coupled.virtual_seconds, tct.virtual_seconds),
            tct.throughput_mb_s,
            tct.stall_seconds,
        )
    table.note(f"super-tile size {SUPER_TILE_MB} MB; one streamed segment each")
    return table


def test_e4_export_tct(benchmark, report_table):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = build_table(rows)
    report_table("e4_export_tct", table)

    factors = [
        speedup(coupled.virtual_seconds, tct.virtual_seconds)
        for _s, coupled, tct in rows
    ]
    # Shape: TCT always wins; the factor grows with object size; the
    # largest object exports at >= 5x the coupled speed.
    assert all(f > 1 for f in factors)
    assert factors[-1] > factors[0]
    assert factors[-1] >= 5
    # TCT approaches streaming rate (mount amortised over the object).
    stream_rate = BENCH_PROFILE.transfer_rate_bps / MB
    assert rows[-1][2].throughput_mb_s > stream_rate / 3
