"""A4 (ablation) — per-tile compression of archived data.

Tape transfer time, not capacity, is the scarce resource, so hardware-rate
compression speeds up both export and retrieval in proportion to the
achieved ratio.  Real climate payloads (spatially coherent doubles) are
compressed with zlib; series: archive bytes/time and retrieval bytes/time
with compression off and on.
"""

import numpy as np
import pytest

from repro.bench import ResultTable, speedup
from repro.core import Heaven, HeavenConfig
from repro.tertiary import GB, MB
from repro.arrays import QuantizedSource
from repro.workloads import ClimateGrid, climate_object, subcube

from _rigs import BENCH_PROFILE

GRID = ClimateGrid(longitudes=240, latitudes=120, heights=16)  # 3.5 MB real
QUERIES = 4
SELECTIVITY = 0.05


def run_variant(compression: str):
    heaven = Heaven(
        HeavenConfig(
            tape_profile=BENCH_PROFILE,
            compression=compression,
            super_tile_bytes=1 * MB,
            disk_cache_bytes=1 * GB,
            memory_cache_bytes=1,  # isolate the tape/disk path
        )
    )
    heaven.create_collection("col")
    obj = climate_object("obj", GRID, seed=6)
    # Instruments deliver finite precision; quantised values are what make
    # archived measurement data compressible.
    obj.source = QuantizedSource(obj.source, step=0.25)
    heaven.insert("col", obj)
    start = heaven.clock.now
    heaven.archive("col", "obj")
    archive_seconds = heaven.clock.now - start
    archived_bytes = sum(m.used_bytes for m in heaven.library.media())
    heaven.library.unmount_all()

    rng = np.random.default_rng(2)
    query_seconds = 0.0
    tape_bytes = 0
    for _ in range(QUERIES):
        # Cold caches per query.
        for key in list(heaven.disk_cache.keys()):
            heaven.disk_cache.invalidate(key)
        for entry in heaven._archived.values():
            entry.staged_runs.clear()
        region = subcube(obj.domain, SELECTIVITY, rng)
        _cells, report = heaven.read_with_report("col", "obj", region)
        query_seconds += report.virtual_seconds
        tape_bytes += report.bytes_from_tape
    return {
        "archive_seconds": archive_seconds,
        "archived_bytes": archived_bytes,
        "query_seconds": query_seconds / QUERIES,
        "tape_bytes": tape_bytes / QUERIES,
        "object_bytes": obj.size_bytes,
    }


def run_all():
    return run_variant("none"), run_variant("zlib")


def build_table(plain, packed) -> ResultTable:
    table = ResultTable(
        "A4  Per-tile compression (real climate payloads, zlib)",
        ["metric", "uncompressed", "zlib", "factor"],
    )
    ratio = packed["archived_bytes"] / plain["archived_bytes"]
    table.add(
        "archived volume [MB]",
        plain["archived_bytes"] / MB,
        packed["archived_bytes"] / MB,
        1.0 / ratio,
    )
    table.add(
        "archive time [s]",
        plain["archive_seconds"],
        packed["archive_seconds"],
        speedup(plain["archive_seconds"], packed["archive_seconds"]),
    )
    table.add(
        "mean query tape [MB]",
        plain["tape_bytes"] / MB,
        packed["tape_bytes"] / MB,
        speedup(plain["tape_bytes"], packed["tape_bytes"]),
    )
    table.add(
        "mean query time [s]",
        plain["query_seconds"],
        packed["query_seconds"],
        speedup(plain["query_seconds"], packed["query_seconds"]),
    )
    table.note("codec modelled at drive line speed (hardware compression)")
    return table


def test_a4_compression(benchmark, report_table):
    plain, packed = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = build_table(plain, packed)
    report_table("a4_compression", table)

    # Shape: compression shrinks the archive and every transfer with it.
    assert packed["archived_bytes"] < 0.8 * plain["archived_bytes"]
    assert packed["tape_bytes"] < plain["tape_bytes"]
    assert packed["query_seconds"] <= plain["query_seconds"] * 1.02
    # Fidelity guard: compressed archive returns identical cells (spot).
    # (covered in depth by tests/core/test_compression.py)
