"""A5 (ablation) — multi-query batching at the façade (``read_many``).

E9 shows the scheduler's win on raw request batches; this ablation shows
the same effect end-to-end: N analysis queries over objects striped across
shared media, answered one by one vs as one scheduled batch.
"""

import numpy as np
import pytest

from repro.bench import ResultTable, speedup
from repro.core import Heaven, HeavenConfig, Placement, PlacementPolicy
from repro.tertiary import GB, MB
from repro.workloads import subcube

from _rigs import BENCH_PROFILE, make_object

OBJECTS = 4
MEDIA = 4
BATCH_SIZES = [4, 8, 16]
SELECTIVITY = 0.05


class SharedStripe(PlacementPolicy):
    """Round-robin super-tiles over one fixed media set for all objects."""

    def __init__(self, media_ids):
        self.media_ids = list(media_ids)

    def plan(self, super_tiles, library):
        return [
            Placement(st, self.media_ids[i % len(self.media_ids)])
            for i, st in enumerate(super_tiles)
        ]


def build_heaven():
    heaven = Heaven(
        HeavenConfig(
            tape_profile=BENCH_PROFILE,
            super_tile_bytes=4 * MB,
            disk_cache_bytes=2 * GB,
            memory_cache_bytes=64 * MB,
            retain_payload=False,
            num_drives=1,
        )
    )
    heaven.create_collection("col")
    media = [heaven.library.new_medium(f"m{i}") for i in range(MEDIA)]
    stripe = SharedStripe([m.medium_id for m in media])
    objects = []
    for i in range(OBJECTS):
        mdd = make_object(64, tile_kb=512, dims=3, name=f"o{i}")
        heaven.insert("col", mdd)
        heaven.archive("col", mdd.name, placement=stripe)
        objects.append(mdd)
    heaven.library.unmount_all()
    return heaven, objects


def make_batch(objects, size, seed):
    rng = np.random.default_rng(seed)
    batch = []
    for i in range(size):
        mdd = objects[i % len(objects)]
        batch.append(("col", mdd.name, subcube(mdd.domain, SELECTIVITY, rng)))
    return batch


def run_sweep():
    rows = []
    for size in BATCH_SIZES:
        heaven, objects = build_heaven()
        batch = make_batch(objects, size, seed=size)
        exchanges0 = heaven.library.stats().exchanges
        start = heaven.clock.now
        for collection, name, region in batch:
            heaven.read(collection, name, region)
        serial_seconds = heaven.clock.now - start
        serial_exchanges = heaven.library.stats().exchanges - exchanges0

        heaven2, objects2 = build_heaven()
        batch2 = make_batch(objects2, size, seed=size)
        _outputs, report = heaven2.read_many(batch2)
        rows.append((size, serial_seconds, serial_exchanges, report))
    return rows


def build_table(rows) -> ResultTable:
    table = ResultTable(
        f"A5  Multi-query batching: serial reads vs read_many "
        f"({OBJECTS} objects striped over {MEDIA} media)",
        ["queries", "serial [s]", "batch [s]", "serial exch.", "batch exch.",
         "speedup"],
    )
    for size, serial_seconds, serial_exchanges, report in rows:
        table.add(
            size,
            serial_seconds,
            report.virtual_seconds,
            serial_exchanges,
            report.exchanges,
            speedup(serial_seconds, report.virtual_seconds),
        )
    table.note("single drive; queries interleave objects on shared media")
    return table


def test_a5_multiquery(benchmark, report_table):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = build_table(rows)
    report_table("a5_multiquery", table)

    for _size, serial_seconds, serial_exchanges, report in rows:
        assert report.exchanges < serial_exchanges
        assert report.virtual_seconds < serial_seconds
    # Batching wins substantially at every batch size (the per-query gain
    # saturates once each medium is exchanged once per batch).
    factors = [s / r.virtual_seconds for _n, s, _e, r in rows]
    assert all(f > 1.3 for f in factors)
