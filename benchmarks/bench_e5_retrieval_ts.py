"""E5 — Datenretrieval durch das TS-System (Kapitel 4.4.1).

The file-level HSM baseline: whatever fraction of an archived object a
request needs, the *whole file* is staged from tape first.  The figure's
series: retrieval time and bytes moved over request selectivity — a flat
line at 100 % of the object, independent of how little the user wanted.
"""

import pytest

from repro.bench import ResultTable
from repro.tertiary import HSMSystem, MB, TapeLibrary

from _rigs import BENCH_PROFILE

OBJECT_MB = 512
SELECTIVITIES = [0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 1.00]


def run_sweep():
    rows = []
    for selectivity in SELECTIVITIES:
        hsm = HSMSystem(TapeLibrary(BENCH_PROFILE, retain_payload=False))
        hsm.archive_file("obj", OBJECT_MB * MB)
        start = hsm.clock.now
        hsm.read_file("obj", 0, int(OBJECT_MB * MB * selectivity))
        elapsed = hsm.clock.now - start
        rows.append((selectivity, elapsed, hsm.stats.bytes_staged_from_tape))
    return rows


def build_table(rows) -> ResultTable:
    table = ResultTable(
        f"E5  HSM (file-granular) retrieval of a {OBJECT_MB} MB object",
        ["selectivity [%]", "useful [MB]", "staged from tape [MB]",
         "useless [%]", "time [s]"],
    )
    for selectivity, elapsed, staged in rows:
        useful = OBJECT_MB * selectivity
        table.add(
            100 * selectivity,
            useful,
            staged / MB,
            100.0 * (1 - useful * MB / staged),
            elapsed,
        )
    table.note("the whole file is staged regardless of request size")
    return table


def test_e5_retrieval_ts(benchmark, report_table):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = build_table(rows)
    report_table("e5_retrieval_ts", table)

    # Shape: bytes from tape are constant (= object size) at every
    # selectivity, and retrieval time is essentially flat.
    staged = [r[2] for r in rows]
    assert all(s == OBJECT_MB * MB for s in staged)
    times = [r[1] for r in rows]
    assert max(times) / min(times) < 1.5
