"""A1 (ablation) — HSM attachment vs direct drive attachment (Kapitel 3.1).

HEAVEN can sit on a file-level HSM (3.1.1) or drive the tape library
directly (3.1.2).  The HSM is simpler to operate but its file granularity
forbids partial super-tile reads and adds a staging double-hop.  Series
over request selectivity: retrieval time and tape bytes for both modes.
"""

import numpy as np
import pytest

from repro.bench import ResultTable, speedup
from repro.tertiary import GB, MB
from repro.workloads import subcube

from _rigs import heaven_rig

OBJECT_MB = 256
SELECTIVITIES = [0.01, 0.05, 0.20]


def run_mode(attachment: str, selectivity: float, seed: int):
    heaven, mdd = heaven_rig(
        object_mb=OBJECT_MB,
        tile_kb=512,
        dims=3,
        super_tile_bytes=16 * MB,
        disk_cache_bytes=2 * GB,
        attachment=attachment,
    )
    heaven.archive("bench", "obj")
    heaven.library.unmount_all()
    region = subcube(mdd.domain, selectivity, np.random.default_rng(seed))
    _cells, report = heaven.read_with_report("bench", "obj", region)
    return report


def run_sweep():
    rows = []
    for i, selectivity in enumerate(SELECTIVITIES):
        drive = run_mode("drive", selectivity, seed=40 + i)
        hsm = run_mode("hsm", selectivity, seed=40 + i)
        rows.append((selectivity, drive, hsm))
    return rows


def build_table(rows) -> ResultTable:
    table = ResultTable(
        f"A1  Attachment mode: direct drive vs file-level HSM "
        f"({OBJECT_MB} MB object)",
        ["selectivity [%]", "drive tape [MB]", "HSM tape [MB]",
         "drive [s]", "HSM [s]", "drive advantage"],
    )
    for selectivity, drive, hsm in rows:
        table.add(
            100 * selectivity,
            drive.bytes_from_tape / MB,
            hsm.bytes_from_tape / MB,
            drive.virtual_seconds,
            hsm.virtual_seconds,
            speedup(hsm.virtual_seconds, drive.virtual_seconds),
        )
    table.note("HSM granularity = whole super-tile files + staging double-hop")
    return table


def test_a1_attachment(benchmark, report_table):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = build_table(rows)
    report_table("a1_attachment", table)

    for _selectivity, drive, hsm in rows:
        # Shape: direct attachment always moves fewer tape bytes (partial
        # runs vs whole files).
        assert drive.bytes_from_tape <= hsm.bytes_from_tape
    # Time: drive attachment wins clearly on thin requests; towards broad
    # coverage the HSM's purely sequential full-segment sweep (no per-run
    # repositioning) closes the gap — the two modes converge.
    for selectivity, drive, hsm in rows:
        if selectivity <= 0.05:
            assert drive.virtual_seconds < hsm.virtual_seconds
        else:
            ratio = drive.virtual_seconds / hsm.virtual_seconds
            assert 0.8 <= ratio <= 1.2
    # The advantage shrinks monotonically with selectivity.
    advantages = [
        hsm.virtual_seconds / drive.virtual_seconds for _s, drive, hsm in rows
    ]
    assert advantages[0] >= advantages[-1]
