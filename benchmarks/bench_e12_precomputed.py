"""E12 — Systemkatalog für vorberechnete Operationsergebnisse (Kapitel 3.8).

Aggregation queries (condensers) over archived objects with and without the
precomputed-results catalog.  Tile-aligned aggregates are answered from the
catalog with zero tape traffic; unaligned ones read only edge tiles
(hybrid).  Series: query time and tape bytes per query class, on/off.
"""

import pytest

from repro.bench import ResultTable, speedup
from repro.tertiary import GB, MB

from _rigs import heaven_rig

OBJECT_MB = 128

QUERY_CLASSES = [
    # (label, rasql) — the object is a 3-D cube with 32-cell tiles.
    ("whole-object avg", "select avg_cells(c) from bench as c"),
    ("tile-aligned sum", "select add_cells(c[0:127, 0:127, 0:31]) from bench as c"),
    # Unaligned in x/y (interior tiles answered from the catalog, shell
    # tiles read), tile-aligned in z so an interior actually exists.
    ("unaligned max", "select max_cells(c[5:250, 9:250, 0:255]) from bench as c"),
]


def run_variant(precompute: bool):
    results = {}
    for label, query in QUERY_CLASSES:
        # Fresh instance per query class: every measurement is cold-cache.
        heaven, _mdd = heaven_rig(
            object_mb=OBJECT_MB,
            tile_kb=256,
            dims=3,
            super_tile_bytes=8 * MB,
            disk_cache_bytes=2 * GB,
            precompute_aggregates=precompute,
        )
        heaven.archive("bench", "obj")
        heaven.library.unmount_all()
        start = heaven.clock.now
        tape0 = heaven.library.stats().bytes_read
        heaven.query(query)
        results[label] = (
            heaven.clock.now - start,
            heaven.library.stats().bytes_read - tape0,
        )
    return results


def run_all():
    return run_variant(False), run_variant(True)


def build_table(off, on) -> ResultTable:
    table = ResultTable(
        f"E12  Precomputed operation results ({OBJECT_MB} MB archived object)",
        ["query", "plain [s]", "catalog [s]", "plain tape [MB]",
         "catalog tape [MB]", "speedup"],
    )
    for label, _query in QUERY_CLASSES:
        plain_time, plain_bytes = off[label]
        cat_time, cat_bytes = on[label]
        table.add(
            label,
            plain_time,
            cat_time,
            plain_bytes / MB,
            cat_bytes / MB,
            speedup(plain_time, cat_time),
        )
    table.note("catalog = per-tile (count, sum, min, max) recorded at export")
    return table


def test_e12_precomputed(benchmark, report_table):
    off, on = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = build_table(off, on)
    report_table("e12_precomputed", table)

    # Shape: aligned aggregates cost (almost) nothing with the catalog.
    for label in ("whole-object avg", "tile-aligned sum"):
        assert on[label][1] == 0  # zero tape bytes
        assert on[label][0] < off[label][0] / 50
    # Unaligned aggregates still win via the hybrid path (edge tiles only).
    assert on["unaligned max"][1] < off["unaligned max"][1]
    assert on["unaligned max"][0] < off["unaligned max"][0]
