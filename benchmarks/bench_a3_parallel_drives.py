"""A3 (ablation) — inter-query parallelism over multiple drives
(Kapitel 3.7.3 context: the ESTEDI platform's parallelisation track).

A batched workload whose requests spread over many media is planned across
1/2/4/8 drives with media assigned longest-first.  Series: makespan and
speedup over the serial timeline — near-linear until the per-medium
imbalance dominates (media are indivisible).
"""

import numpy as np
import pytest

from repro.bench import ResultTable
from repro.core import TapeRequest, plan_parallel
from repro.tertiary import MB, TapeLibrary

from _rigs import BENCH_PROFILE

MEDIA = 8
SEGMENTS_PER_MEDIUM = 12
SEGMENT_MB = 8
BATCH = 48
DRIVES = [1, 2, 4, 8]


def build_batch():
    library = TapeLibrary(BENCH_PROFILE, retain_payload=False)
    requests = []
    for m in range(MEDIA):
        library.new_medium(f"m{m}")
        for s in range(SEGMENTS_PER_MEDIUM):
            name = f"m{m}/s{s}"
            library.write_segment(name, SEGMENT_MB * MB, medium_id=f"m{m}")
            _mid, segment = library.segment(name)
            requests.append(
                TapeRequest(name, f"m{m}", segment.offset, segment.length)
            )
    rng = np.random.default_rng(9)
    chosen = rng.choice(len(requests), size=BATCH, replace=False)
    return library, [requests[i] for i in chosen]


def run_sweep():
    library, batch = build_batch()
    return [(d, plan_parallel(batch, library, d)) for d in DRIVES]


def build_table(rows) -> ResultTable:
    table = ResultTable(
        f"A3  Parallel drives: makespan of a {BATCH}-request batch over "
        f"{MEDIA} media",
        ["drives", "makespan [s]", "speedup", "busiest drive media"],
    )
    for drives, plan in rows:
        busiest = max(plan.drives, key=lambda d: d.busy_seconds)
        table.add(
            drives,
            plan.makespan_seconds,
            plan.speedup,
            len(busiest.media),
        )
    table.note("media are indivisible; assignment is longest-processing-first")
    return table


def test_a3_parallel_drives(benchmark, report_table):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = build_table(rows)
    report_table("a3_parallel_drives", table)

    speedups = [plan.speedup for _d, plan in rows]
    # Shape: monotone speedup, near-linear at 2 drives, sub-linear later.
    assert speedups == sorted(speedups)
    assert speedups[1] > 1.6  # 2 drives
    assert speedups[-1] <= MEDIA  # bounded by indivisible media
    makespans = [plan.makespan_seconds for _d, plan in rows]
    assert makespans == sorted(makespans, reverse=True)
