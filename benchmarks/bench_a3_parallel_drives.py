"""A3 (ablation) — inter-query parallelism over multiple drives
(Kapitel 3.7.3 context: the ESTEDI platform's parallelisation track).

A batched workload whose requests spread over many media is **executed**
across 1/2/4/8 drives by the discrete-event :class:`ParallelExecutor`:
per-drive virtual timelines, whole-media elevator sweeps assigned
longest-first with work stealing, and the robot arm serialised between
the timelines.  Series: executed makespan and speedup (device work over
makespan, measured from the event log) next to the planner's estimate —
the two must agree within the executor's validation tolerance.
"""

import numpy as np
import pytest

from repro.bench import ResultTable
from repro.core import ParallelExecutor, TapeRequest, plan_parallel
from repro.tertiary import MB, TapeLibrary

from _rigs import BENCH_PROFILE

MEDIA = 8
SEGMENTS_PER_MEDIUM = 12
SEGMENT_MB = 8
BATCH = 48
DRIVES = [1, 2, 4, 8]


def build_batch(num_drives=1):
    library = TapeLibrary(BENCH_PROFILE, num_drives=num_drives, retain_payload=False)
    requests = []
    for m in range(MEDIA):
        library.new_medium(f"m{m}")
        for s in range(SEGMENTS_PER_MEDIUM):
            name = f"m{m}/s{s}"
            library.write_segment(name, SEGMENT_MB * MB, medium_id=f"m{m}")
            _mid, segment = library.segment(name)
            requests.append(
                TapeRequest(name, f"m{m}", segment.offset, segment.length)
            )
    library.unmount_all()
    library.clock.reset()
    rng = np.random.default_rng(9)
    chosen = rng.choice(len(requests), size=BATCH, replace=False)
    return library, [requests[i] for i in chosen]


def run_sweep():
    """Execute the same batch on a fresh library per drive count."""
    rows = []
    for drives in DRIVES:
        library, batch = build_batch(num_drives=drives)
        plan = plan_parallel(batch, library, drives)
        report = ParallelExecutor(library, num_drives=drives).execute(batch)
        rows.append((drives, plan, report))
    return rows


def build_table(rows) -> ResultTable:
    table = ResultTable(
        f"A3  Parallel drives: executed makespan of a {BATCH}-request batch "
        f"over {MEDIA} media",
        ["drives", "makespan [s]", "speedup", "planned [s]", "drift",
         "robot wait [s]", "exch."],
    )
    for drives, plan, report in rows:
        table.add(
            drives,
            report.makespan_seconds,
            report.speedup,
            plan.makespan_seconds,
            f"{report.estimate_drift:.2%}",
            report.robot_wait_seconds,
            report.exchanges,
        )
    table.note(
        "executed on per-drive timelines; speedup = event-log device work "
        "/ makespan; media are indivisible, the robot arm is shared"
    )
    return table


def test_a3_parallel_drives(benchmark, report_table):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = build_table(rows)
    report_table("a3_parallel_drives", table)

    speedups = [report.speedup for _d, _p, report in rows]
    # Shape: monotone speedup; 2 drives clear the acceptance bar; bounded.
    assert speedups == sorted(speedups)
    assert speedups[0] == pytest.approx(1.0)
    assert speedups[1] >= 1.5  # 2 drives (executed, not estimated)
    assert speedups[-1] <= MEDIA  # bounded by indivisible media
    makespans = [report.makespan_seconds for _d, _p, report in rows]
    assert makespans == sorted(makespans, reverse=True)
    for _d, plan, report in rows:
        # The planner replays the executor's dispatch: agreement <= 10 %.
        assert report.makespan_seconds == pytest.approx(
            plan.makespan_seconds, rel=0.10
        )
        # Work conservation: same bytes regardless of the drive count.
        assert report.bytes_read == rows[0][2].bytes_read
