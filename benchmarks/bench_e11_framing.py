"""E11 — Object-Framing für Array-Daten (Kapitel 3.7).

Non-hypercube queries evaluated as frames vs their bounding box.  Series
per frame shape (L-shape, diagonal wavefront, sparse mask): tiles fetched,
bytes from tape and time — the frame path should fetch only the tiles the
frame truly touches.
"""

import numpy as np
import pytest

from repro.bench import ResultTable, speedup
from repro.core import HalfSpaceFrame, MaskFrame, MultiBoxFrame, tiles_in_frame
from repro.tertiary import GB, MB

from _rigs import heaven_rig

OBJECT_MB = 128


def make_frames(domain):
    side = domain[0].extent
    strip = side // 5
    l_shape = MultiBoxFrame(
        [
            # left wall + bottom floor of the cube
            type(domain).of((0, side - 1), (0, strip - 1), (0, side - 1)),
            type(domain).of((0, strip - 1), (0, side - 1), (0, side - 1)),
        ]
    )
    diagonal = HalfSpaceFrame(domain, [([1.0, 1.0, 0.0], float(side // 2))])
    rng = np.random.default_rng(3)
    mask_cells = np.zeros(domain.shape, dtype=bool)
    # A sparse set of hot columns (e.g. station locations).
    for _ in range(6):
        x = int(rng.integers(0, domain.shape[0] - 8))
        y = int(rng.integers(0, domain.shape[1] - 8))
        mask_cells[x : x + 8, y : y + 8, :] = True
    sparse = MaskFrame(domain, mask_cells)
    return {"L-shape": l_shape, "diagonal": diagonal, "sparse-mask": sparse}


def run_frame(label, frame):
    heaven, mdd = heaven_rig(
        object_mb=OBJECT_MB,
        tile_kb=256,
        dims=3,
        super_tile_bytes=4 * MB,
        disk_cache_bytes=2 * GB,
    )
    heaven.archive("bench", "obj")
    heaven.library.unmount_all()

    # Bounding-box baseline: classic trimming reads the hull.
    bounding = frame.bounding_box().intersection(mdd.domain)
    start = heaven.clock.now
    tape0 = heaven.library.stats().bytes_read
    _cells, box_report = heaven.read_with_report("bench", "obj", bounding)
    box_time = heaven.clock.now - start
    box_tiles = box_report.tiles_needed
    box_bytes = heaven.library.stats().bytes_read - tape0

    # Fresh instance for the framed read (cold caches).
    heaven2, mdd2 = heaven_rig(
        object_mb=OBJECT_MB,
        tile_kb=256,
        dims=3,
        super_tile_bytes=4 * MB,
        disk_cache_bytes=2 * GB,
    )
    heaven2.archive("bench", "obj")
    heaven2.library.unmount_all()
    frame_tiles = len(tiles_in_frame(mdd2, frame))
    start = heaven2.clock.now
    tape0 = heaven2.library.stats().bytes_read
    heaven2.read_frame("bench", "obj", frame)
    frame_time = heaven2.clock.now - start
    frame_bytes = heaven2.library.stats().bytes_read - tape0

    return {
        "label": label,
        "box_tiles": box_tiles,
        "frame_tiles": frame_tiles,
        "box_bytes": box_bytes,
        "frame_bytes": frame_bytes,
        "box_time": box_time,
        "frame_time": frame_time,
    }


def run_all():
    _heaven, mdd = heaven_rig(object_mb=OBJECT_MB, tile_kb=256, dims=3)
    frames = make_frames(mdd.domain)
    return [run_frame(label, frame) for label, frame in frames.items()]


def build_table(rows) -> ResultTable:
    table = ResultTable(
        f"E11  Object framing vs bounding-box trimming ({OBJECT_MB} MB object)",
        ["frame", "box tiles", "frame tiles", "box tape [MB]",
         "frame tape [MB]", "box [s]", "frame [s]", "speedup"],
    )
    for row in rows:
        table.add(
            row["label"],
            row["box_tiles"],
            row["frame_tiles"],
            row["box_bytes"] / MB,
            row["frame_bytes"] / MB,
            row["box_time"],
            row["frame_time"],
            speedup(row["box_time"], row["frame_time"]),
        )
    table.note("box = classic hypercube trim over the frame's bounding box")
    return table


def test_e11_framing(benchmark, report_table):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = build_table(rows)
    report_table("e11_framing", table)

    for row in rows:
        # Shape: frames touch fewer tiles and move fewer tape bytes.
        assert row["frame_tiles"] < row["box_tiles"]
        assert row["frame_bytes"] <= row["box_bytes"]
    # The sparse mask is the extreme case: a large factor.
    sparse = [r for r in rows if r["label"] == "sparse-mask"][0]
    assert sparse["box_tiles"] / sparse["frame_tiles"] >= 2
