"""E1 — Testumgebung (Kapitel 4.1).

Reproduces the test-environment characteristics table: drive/media/robot
parameters of every modelled technology and the two headline ratios the
paper builds its argument on (random access 10**3-10**4x slower than disk,
transfer only ~2x slower).
"""

import pytest

from repro.bench import ResultTable
from repro.tertiary import DISK_ARRAY, TAPE_PROFILES, environment_table


def build_table() -> ResultTable:
    table = ResultTable(
        "E1  Test environment (device cost models)",
        ["device", "media capacity", "exchange [s]", "mean access [s]",
         "transfer", "random access vs disk"],
    )
    for row in environment_table():
        table.add(
            row.device,
            row.capacity,
            row.exchange_s,
            row.avg_access_s,
            row.transfer,
            row.access_vs_disk,
        )
    table.note("paper ranges: exchange 12-40 s, mean access 27-95 s (tape)")
    table.note("paper ratios: tape random access 10^3-10^4 x disk; transfer ~ 1/2 disk")
    return table


def test_e1_environment(benchmark, report_table):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    report_table("e1_environment", table)

    # Shape assertions: the modelled devices sit inside the paper's ranges.
    for profile in TAPE_PROFILES.values():
        if profile.seekable:
            continue  # optical platter: different mechanics by design
        assert 12 <= profile.exchange_time_s <= 40
        assert 27 <= profile.avg_seek_time_s <= 95
        ratio = profile.avg_seek_time_s / DISK_ARRAY.avg_access_time_s
        assert 1_000 <= ratio <= 20_000
