"""Shared benchmark infrastructure.

Every experiment builds one or more :class:`ResultTable`s.  Tables are
written to ``benchmarks/results/<experiment>.txt`` and echoed into the
pytest terminal summary (so they are visible even with output capture on).
"""

from __future__ import annotations

import os
from typing import List

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_collected: List[str] = []


@pytest.fixture
def report_table():
    """Fixture: call with (experiment_id, *tables) to record results."""

    def _report(experiment_id: str, *tables) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        rendered = "\n\n".join(t.render() for t in tables)
        path = os.path.join(RESULTS_DIR, f"{experiment_id}.txt")
        with open(path, "w") as handle:
            handle.write(rendered + "\n")
        _collected.append(rendered)

    return _report


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _collected:
        return
    terminalreporter.write_sep("=", "HEAVEN reproduction: experiment tables")
    for rendered in _collected:
        terminalreporter.write_line("")
        for line in rendered.splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
    terminalreporter.write_line(f"(also written to {RESULTS_DIR}/)")
