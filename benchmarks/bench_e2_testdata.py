"""E2 — Testdaten (Kapitel 4.2).

Reproduces the test-data inventory table: the three ESTEDI-style workloads
(climate, satellite, cosmology) with dimensionality, cell type, tile
geometry, tile count and object volume.  Sizes are laptop-scaled; the
geometry (tiles per object, dimensionality, access shapes) is what the
experiments depend on.
"""

import pytest

from repro.bench import ResultTable
from repro.tertiary import MB
from repro.workloads import (
    ClimateGrid,
    SceneGrid,
    SimulationBox,
    climate_object,
    cosmology_object,
    satellite_object,
)


def build_objects():
    return [
        ("climate (DKRZ)", climate_object("clim", ClimateGrid(360, 180, 16, 12))),
        ("satellite (DLR)", satellite_object("sat", SceneGrid(8192, 8192))),
        ("cosmology (Cineca)", cosmology_object("cosmo", SimulationBox(256))),
    ]


def build_table() -> ResultTable:
    table = ResultTable(
        "E2  Test data inventory",
        ["workload", "domain", "cell type", "tiling", "tiles", "object size"],
    )
    for label, obj in build_objects():
        table.add(
            label,
            str(obj.domain),
            obj.cell_type.name,
            obj.tiling.describe(),
            obj.tile_count(),
            f"{obj.size_bytes / MB:,.0f} MB",
        )
    table.note("paper archives: DLR 1 PB, DKRZ 4 PB, Cineca 900 TB (scaled here)")
    return table


def test_e2_testdata(benchmark, report_table):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    report_table("e2_testdata", table)

    objects = [obj for _label, obj in build_objects()]
    # Shape assertions: tens-of-MB-plus objects, many tiles each.
    assert all(obj.size_bytes >= 64 * MB for obj in objects)
    assert all(obj.tile_count() >= 36 for obj in objects)
    dims = {obj.domain.dimension for obj in objects}
    assert dims == {2, 3, 4}  # one workload per dimensionality
