"""E13 — The network-transfer example of Kapitel 1.1.

The paper motivates partial-object access with a delivery scenario: a user
needs 10 % of 2 TB of result data.  Shipping only the useful subset over an
8 Mbit/s DSL line takes about a tenth of shipping the complete objects —
the difference between an overnight wait and a work-week one.  We reproduce
the arithmetic with the network model and cross-check the ratio against the
simulator's byte accounting from an actual HEAVEN retrieval.
"""

import numpy as np
import pytest

from repro.bench import ResultTable
from repro.tertiary import DSL_8MBIT, GB, MB
from repro.workloads import subcube

from _rigs import heaven_rig

FULL_BYTES = 2 * 10**12       # 2 TB of complete objects
SUBSET_BYTES = 200 * 10**9    # the 10 % the user actually needs


def run_analysis():
    full_seconds = DSL_8MBIT.transfer_time(FULL_BYTES)
    subset_seconds = DSL_8MBIT.transfer_time(SUBSET_BYTES)

    # Cross-check with a real retrieval: what fraction of an object does
    # HEAVEN actually ship for a 10 % request?
    heaven, mdd = heaven_rig(
        object_mb=256, tile_kb=512, dims=3, super_tile_bytes=16 * MB,
        disk_cache_bytes=2 * GB,
    )
    heaven.archive("bench", "obj")
    region = subcube(mdd.domain, 0.10, np.random.default_rng(1))
    cells, report = heaven.read_with_report("bench", "obj", region)
    shipped_fraction = report.bytes_useful / mdd.size_bytes
    return full_seconds, subset_seconds, shipped_fraction


def build_table(full_seconds, subset_seconds, shipped_fraction) -> ResultTable:
    table = ResultTable(
        "E13  Network delivery: complete objects vs needed subset (8 Mbit/s)",
        ["delivery", "bytes", "transfer time [h]"],
    )
    table.add("complete objects", f"{FULL_BYTES / 10**12:.0f} TB", full_seconds / 3600)
    table.add("10 % subset", f"{SUBSET_BYTES / 10**9:.0f} GB", subset_seconds / 3600)
    table.add(
        "ratio", "-", full_seconds / subset_seconds
    )
    table.note(
        "HEAVEN ships only the requested region: measured useful fraction "
        f"for a 10 % subcube = {100 * shipped_fraction:.1f} % of the object"
    )
    return table


def test_e13_network(benchmark, report_table):
    full_seconds, subset_seconds, shipped_fraction = benchmark.pedantic(
        run_analysis, rounds=1, iterations=1
    )
    table = build_table(full_seconds, subset_seconds, shipped_fraction)
    report_table("e13_network", table)

    # Shape: the paper's 10x ratio between full and subset delivery.
    assert full_seconds / subset_seconds == pytest.approx(10.0, rel=0.01)
    # And HEAVEN really ships ~10 % of the object for a 10 % request.
    assert 0.05 <= shipped_fraction <= 0.15
